//! Resource analysis (Section 7 of the paper).
//!
//! The non-trivial cost of quantum differentiation is the number of *copies
//! of the input state*: by no-cloning, each compiled program `P′i` needs a
//! fresh copy, so `m = |#∂/∂θj(P(θ))|` is the headline resource. The paper
//! bounds it by the **occurrence count** `OCj(P(θ))` (Definition 7.1):
//!
//! ```text
//! OCj(atomic)         = 0
//! OCj(U(θ))           = 1 if U uses θj else 0
//! OCj(P1;P2)          = OCj(P1) + OCj(P2)
//! OCj(case … end)     = maxm OCj(Pm)
//! OCj(while(T) … )    = T · OCj(P1)
//! ```
//!
//! Proposition 7.2: `|#∂/∂θj(P(θ))| ≤ OCj(P(θ))`.

use crate::exec::differentiate;
use crate::transform::TransformError;
use qdp_lang::ast::Stmt;

/// The occurrence count `OCj(P(θ))` of Definition 7.1.
///
/// # Examples
///
/// ```
/// use qdp_ad::resource::occurrence_count;
/// use qdp_lang::parse_program;
///
/// let p = parse_program("q1 *= RX(t); while[3] M[q1] = 1 do q1 *= RY(t) done")?;
/// assert_eq!(occurrence_count(&p, "t"), 1 + 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn occurrence_count(stmt: &Stmt, param: &str) -> usize {
    match stmt {
        Stmt::Abort { .. } | Stmt::Skip { .. } | Stmt::Init { .. } => 0,
        Stmt::Unitary { gate, .. } => usize::from(gate.uses_param(param)),
        Stmt::Seq(a, b) => occurrence_count(a, param) + occurrence_count(b, param),
        Stmt::Case { arms, .. } => arms
            .iter()
            .map(|arm| occurrence_count(arm, param))
            .max()
            .unwrap_or(0),
        Stmt::While { bound, body, .. } => (*bound as usize) * occurrence_count(body, param),
        // Additive choice can run either branch; both multisets are kept, so
        // the natural extension is the sum (matching the compile rule).
        Stmt::Sum(a, b) => occurrence_count(a, param) + occurrence_count(b, param),
    }
}

/// The number of non-aborting compiled derivative programs
/// `|#∂/∂θj(P(θ))|` (Definition 4.3 applied to the Fig. 4 transformation).
///
/// # Errors
///
/// Returns [`TransformError`] for programs outside the differentiable
/// fragment.
pub fn derivative_program_count(stmt: &Stmt, param: &str) -> Result<usize, TransformError> {
    Ok(differentiate(stmt, param)?.compiled().len())
}

/// One row of the paper's resource tables for a single parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceReport {
    /// The parameter analysed.
    pub param: String,
    /// `OCj(P(θ))`.
    pub occurrence_count: usize,
    /// `|#∂/∂θj(P(θ))|`.
    pub derivative_programs: usize,
}

impl ResourceReport {
    /// Proposition 7.2 for this row.
    pub fn satisfies_bound(&self) -> bool {
        self.derivative_programs <= self.occurrence_count
    }

    /// The Chernoff trajectory budget of this parameter's derivative at
    /// additive precision `delta` — `⌈m²/δ²⌉` sampled trajectories
    /// ([`qdp_sim::chernoff_shots`], Section 7), each consuming a fresh
    /// copy of the input state. Zero when the derivative multiset is empty
    /// (the derivative is exactly 0; nothing to sample).
    ///
    /// # Panics
    ///
    /// Panics when `delta` is not positive.
    pub fn chernoff_budget(&self, delta: f64) -> usize {
        assert!(delta > 0.0, "precision must be positive");
        if self.derivative_programs == 0 {
            0
        } else {
            qdp_sim::chernoff_shots(self.derivative_programs, delta)
        }
    }
}

/// Total sampled trajectories one **full gradient** of `stmt` costs at
/// additive precision `delta` per parameter: `Σj ⌈mj²/δ²⌉` over the
/// per-parameter derivative multisets — the execution-cost companion to
/// the copy-count tables (what the Tables 2/3 binaries report alongside
/// `OC`/`|#∂|`).
///
/// # Errors
///
/// Returns [`TransformError`] for programs outside the differentiable
/// fragment.
///
/// # Panics
///
/// Panics when `delta` is not positive.
pub fn gradient_shot_budget(stmt: &Stmt, delta: f64) -> Result<usize, TransformError> {
    Ok(analyze(stmt)?
        .iter()
        .map(|report| report.chernoff_budget(delta))
        .sum())
}

/// Computes [`ResourceReport`]s for every parameter of a program.
///
/// # Errors
///
/// Returns [`TransformError`] for programs outside the differentiable
/// fragment.
pub fn analyze(stmt: &Stmt) -> Result<Vec<ResourceReport>, TransformError> {
    stmt.parameters()
        .into_iter()
        .map(|param| {
            Ok(ResourceReport {
                occurrence_count: occurrence_count(stmt, &param),
                derivative_programs: derivative_program_count(stmt, &param)?,
                param,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::parse_program;

    fn oc(src: &str, param: &str) -> usize {
        occurrence_count(&parse_program(src).unwrap(), param)
    }

    fn count(src: &str, param: &str) -> usize {
        derivative_program_count(&parse_program(src).unwrap(), param).unwrap()
    }

    #[test]
    fn atomic_statements_have_zero_count() {
        assert_eq!(oc("abort[q1]", "t"), 0);
        assert_eq!(oc("skip[q1]", "t"), 0);
        assert_eq!(oc("q1 := |0>", "t"), 0);
        assert_eq!(oc("q1 *= H", "t"), 0);
        assert_eq!(oc("q1 *= RX(s)", "t"), 0, "trivially-used parameter");
    }

    #[test]
    fn sequence_adds_and_case_maxes() {
        assert_eq!(oc("q1 *= RX(t); q1 *= RY(t)", "t"), 2);
        assert_eq!(
            oc("case M[q1] = 0 -> q1 *= RX(t); q1 *= RY(t), 1 -> q1 *= RZ(t) end", "t"),
            2
        );
    }

    #[test]
    fn while_multiplies_by_bound() {
        assert_eq!(oc("while[4] M[q1] = 1 do q1 *= RX(t); q1 *= RY(t) done", "t"), 8);
    }

    #[test]
    fn proposition_7_2_holds_on_assorted_programs() {
        let sources = [
            "q1 *= RX(t)",
            "q1 *= RX(t); q1 *= RY(t); q1 *= RZ(t)",
            "case M[q1] = 0 -> q1 *= RX(t), 1 -> q1 *= RY(t); q1 *= RZ(t) end",
            "while[2] M[q1] = 1 do q1 *= RX(t) done",
            "while[3] M[q1] = 1 do q1 *= RX(t); q1 *= RY(t) done",
            "q1 *= RX(t); case M[q1] = 0 -> skip[q1], 1 -> abort[q1] end; q1 *= RY(t)",
            "q1 := |0>; q1 *= H; q1 *= RZ(t)",
        ];
        for src in sources {
            let p = parse_program(src).unwrap();
            for report in analyze(&p).unwrap() {
                assert!(
                    report.satisfies_bound(),
                    "{src}: |#∂/∂{}| = {} > OC = {}",
                    report.param,
                    report.derivative_programs,
                    report.occurrence_count
                );
            }
        }
    }

    #[test]
    fn bound_is_tight_for_straightline_programs() {
        assert_eq!(count("q1 *= RX(t); q1 *= RY(t); q1 *= RZ(t)", "t"), 3);
        assert_eq!(oc("q1 *= RX(t); q1 *= RY(t); q1 *= RZ(t)", "t"), 3);
    }

    #[test]
    fn bound_is_strict_for_while_loops() {
        // Differentiating the unrolled while produces essentially-aborting
        // programs that get optimised away (Table 3, note (3)).
        let src = "while[2] M[q1] = 1 do q1 *= RX(t) done";
        assert_eq!(oc(src, "t"), 2);
        assert!(count(src, "t") <= 2);
    }

    #[test]
    fn per_parameter_reports() {
        let p = parse_program("q1 *= RX(a); q1 *= RY(b); q1 *= RZ(a)").unwrap();
        let reports = analyze(&p).unwrap();
        assert_eq!(reports.len(), 2);
        let a = reports.iter().find(|r| r.param == "a").unwrap();
        let b = reports.iter().find(|r| r.param == "b").unwrap();
        assert_eq!(a.occurrence_count, 2);
        assert_eq!(a.derivative_programs, 2);
        assert_eq!(b.occurrence_count, 1);
        assert_eq!(b.derivative_programs, 1);
    }

    #[test]
    fn chernoff_budget_follows_program_counts() {
        let p = parse_program("q1 *= RX(a); q1 *= RY(b); q1 *= RZ(a)").unwrap();
        let reports = analyze(&p).unwrap();
        let a = reports.iter().find(|r| r.param == "a").unwrap();
        let b = reports.iter().find(|r| r.param == "b").unwrap();
        // m = 2 at δ = 0.1 → 400 shots; m = 1 → 100 (⌈m²/δ²⌉).
        assert_eq!(a.chernoff_budget(0.1), 400);
        assert_eq!(b.chernoff_budget(0.1), 100);
        assert_eq!(gradient_shot_budget(&p, 0.1).unwrap(), 500);
    }

    #[test]
    fn empty_multisets_cost_no_trajectories() {
        // No parameters → no derivative programs → zero budget.
        let p = parse_program("q1 *= H").unwrap();
        assert_eq!(gradient_shot_budget(&p, 0.1).unwrap(), 0);
        let report = ResourceReport {
            param: "t".into(),
            occurrence_count: 0,
            derivative_programs: 0,
        };
        assert_eq!(report.chernoff_budget(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn chernoff_budget_rejects_nonpositive_delta_even_when_empty() {
        let report = ResourceReport {
            param: "t".into(),
            occurrence_count: 0,
            derivative_programs: 0,
        };
        let _ = report.chernoff_budget(0.0);
    }

    #[test]
    fn case_with_aborting_arm_reduces_count() {
        // Arm 1 aborts, so derivative programs from that arm vanish.
        let src = "case M[q1] = 0 -> q1 *= RX(t); q1 *= RY(t), 1 -> abort[q1] end";
        assert_eq!(oc(src, "t"), 2);
        assert_eq!(count(src, "t"), 2);
    }
}
