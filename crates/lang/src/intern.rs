//! Structural fingerprints of programs — the cache key of the
//! compile-once pipeline.
//!
//! `qdp_ad`'s `ProgramCache` memoizes lowering per *unique program*, where
//! "unique" means structural identity of the triple the lowering actually
//! depends on: the compiled AST (gates, axes, angle parameters and offsets,
//! control flow), the register layout (variable names **and order** — the
//! lowered qubit indices), and therefore implicitly the ancilla extension
//! (an extended register hashes differently from its base). This module
//! computes a deterministic 64-bit fingerprint over exactly that triple.
//!
//! The fingerprint is a *hash*, not an identity: two different programs can
//! in principle collide, so the cache always verifies full structural
//! equality ([`Stmt: PartialEq`] / [`Register: PartialEq`]) before sharing
//! a compiled skeleton. The hash only routes the lookup; collisions cost a
//! bucket scan, never an aliased skeleton.
//!
//! Determinism matters more than speed here: the hash is FNV-1a over an
//! explicit pre-order serialization (variant tags, lengths, name bytes,
//! `f64::to_bits` for angles), with no dependence on pointer values,
//! `HashMap` iteration order, or the process' ASLR — the same program
//! fingerprints identically in every run on every platform.

use crate::ast::{Angle, Gate, Stmt, Var};
use crate::register::Register;
use qdp_linalg::Pauli;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher over the explicit serialization
/// this module defines. Exposed so callers (e.g. the gradient service) can
/// fold extra context — observable matrices, valuations — into the same
/// deterministic stream.
#[derive(Clone, Debug)]
pub struct StructuralHasher {
    state: u64,
}

impl Default for StructuralHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StructuralHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StructuralHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the stream.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte (used for variant tags).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` by its exact IEEE-754 bit pattern — `0.0` and `-0.0`
    /// hash differently, as do any two angles that would produce different
    /// gate matrices.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string as length + bytes (length-prefixing keeps `"ab","c"`
    /// distinct from `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

fn write_pauli(h: &mut StructuralHasher, p: Pauli) {
    h.write_u8(match p {
        Pauli::I => 0,
        Pauli::X => 1,
        Pauli::Y => 2,
        Pauli::Z => 3,
    });
}

fn write_angle(h: &mut StructuralHasher, a: &Angle) {
    match &a.param {
        None => h.write_u8(0),
        Some(name) => {
            h.write_u8(1);
            h.write_str(name);
        }
    }
    h.write_f64(a.offset);
}

fn write_var(h: &mut StructuralHasher, v: &Var) {
    h.write_str(v.name());
}

fn write_vars(h: &mut StructuralHasher, qs: &[Var]) {
    h.write_u64(qs.len() as u64);
    for q in qs {
        write_var(h, q);
    }
}

/// Folds a gate: variant tag, axis, control count, and angle (parameter
/// name plus exact offset bits).
pub fn write_gate(h: &mut StructuralHasher, g: &Gate) {
    match g {
        Gate::Rot { axis, angle } => {
            h.write_u8(1);
            write_pauli(h, *axis);
            write_angle(h, angle);
        }
        Gate::Coupling { axis, angle } => {
            h.write_u8(2);
            write_pauli(h, *axis);
            write_angle(h, angle);
        }
        Gate::CRot { controls, axis, angle } => {
            h.write_u8(3);
            h.write_u64(*controls as u64);
            write_pauli(h, *axis);
            write_angle(h, angle);
        }
        Gate::CCoupling { controls, axis, angle } => {
            h.write_u8(4);
            h.write_u64(*controls as u64);
            write_pauli(h, *axis);
            write_angle(h, angle);
        }
        Gate::H => h.write_u8(5),
        Gate::X => h.write_u8(6),
        Gate::Y => h.write_u8(7),
        Gate::Z => h.write_u8(8),
        Gate::Cnot => h.write_u8(9),
    }
}

/// Folds a statement tree in pre-order: variant tags, operand variables,
/// gates, arm counts, loop bounds.
pub fn write_stmt(h: &mut StructuralHasher, s: &Stmt) {
    match s {
        Stmt::Abort { qs } => {
            h.write_u8(1);
            write_vars(h, qs);
        }
        Stmt::Skip { qs } => {
            h.write_u8(2);
            write_vars(h, qs);
        }
        Stmt::Init { q } => {
            h.write_u8(3);
            write_var(h, q);
        }
        Stmt::Unitary { gate, qs } => {
            h.write_u8(4);
            write_gate(h, gate);
            write_vars(h, qs);
        }
        Stmt::Seq(a, b) => {
            h.write_u8(5);
            write_stmt(h, a);
            write_stmt(h, b);
        }
        Stmt::Case { qs, arms } => {
            h.write_u8(6);
            write_vars(h, qs);
            h.write_u64(arms.len() as u64);
            for arm in arms {
                write_stmt(h, arm);
            }
        }
        Stmt::While { q, bound, body } => {
            h.write_u8(7);
            write_var(h, q);
            h.write_u64(u64::from(*bound));
            write_stmt(h, body);
        }
        Stmt::Sum(a, b) => {
            h.write_u8(8);
            write_stmt(h, a);
            write_stmt(h, b);
        }
    }
}

/// Folds a register: qubit count plus every variable name **in index
/// order**, so registers differing in width, naming, or ordering (and in
/// particular base vs ancilla-extended registers) fingerprint differently.
pub fn write_register(h: &mut StructuralHasher, reg: &Register) {
    h.write_u64(reg.len() as u64);
    for v in reg.vars() {
        write_var(h, v);
    }
}

/// The structural fingerprint of one program over a register.
pub fn program_fingerprint(stmt: &Stmt, reg: &Register) -> u64 {
    let mut h = StructuralHasher::new();
    write_register(&mut h, reg);
    write_stmt(&mut h, stmt);
    h.finish()
}

/// The structural fingerprint of a compiled multiset (an ordered program
/// list) over a register — the cache key of `qdp_ad`'s `ProgramCache`.
pub fn multiset_fingerprint(programs: &[Stmt], reg: &Register) -> u64 {
    let mut h = StructuralHasher::new();
    write_register(&mut h, reg);
    h.write_u64(programs.len() as u64);
    for p in programs {
        write_stmt(&mut h, p);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn fp(src: &str) -> u64 {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        program_fingerprint(&p, &reg)
    }

    #[test]
    fn fingerprint_is_deterministic_across_calls() {
        let src = "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 := |0> end";
        assert_eq!(fp(src), fp(src));
    }

    #[test]
    fn distinct_structures_fingerprint_differently() {
        // Param name, axis, offset, register naming, control flow — every
        // component the lowering depends on must separate keys.
        let base = fp("q1 *= RX(a)");
        for other in [
            "q1 *= RX(b)",            // param name
            "q1 *= RY(a)",            // axis
            "q1 *= RX(a + pi/2)",     // offset
            "q2 *= RX(a)",            // register naming
            "q1 *= RX(a); q1 *= H",   // structure
        ] {
            assert_ne!(base, fp(other), "{other} must not alias q1 *= RX(a)");
        }
    }

    #[test]
    fn register_width_and_order_separate_fingerprints() {
        let p = parse_program("q1 *= RX(a)").unwrap();
        let narrow = Register::from_vars([Var::new("q1")]);
        let wide = Register::from_vars([Var::new("q1"), Var::new("q2")]);
        let reordered = Register::from_vars([Var::new("q2"), Var::new("q1")]);
        let ancilla = narrow.with_ancilla_front(Var::new("A"));
        let fps = [
            program_fingerprint(&p, &narrow),
            program_fingerprint(&p, &wide),
            program_fingerprint(&p, &reordered),
            program_fingerprint(&p, &ancilla),
        ];
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "register variants {i} and {j} alias");
            }
        }
    }

    #[test]
    fn multiset_fingerprint_depends_on_length_and_order() {
        let a = parse_program("q1 *= RX(t)").unwrap();
        let b = parse_program("q1 *= RY(t)").unwrap();
        let reg = Register::from_vars([Var::new("q1")]);
        let ab = multiset_fingerprint(&[a.clone(), b.clone()], &reg);
        let ba = multiset_fingerprint(&[b.clone(), a.clone()], &reg);
        let aa = multiset_fingerprint(&[a.clone(), a.clone()], &reg);
        let single = multiset_fingerprint(std::slice::from_ref(&a), &reg);
        assert_ne!(ab, ba);
        assert_ne!(ab, aa);
        assert_ne!(aa, single);
    }

    #[test]
    fn angle_sign_of_zero_is_distinguished() {
        // to_bits separates 0.0 from -0.0; the matrices agree but keying on
        // exact bits keeps the contract simple (never alias unless equal).
        let mut h0 = StructuralHasher::new();
        h0.write_f64(0.0);
        let mut h1 = StructuralHasher::new();
        h1.write_f64(-0.0);
        assert_ne!(h0.finish(), h1.finish());
    }
}
