//! Extraction of a program's denotational superoperator as a matrix.
//!
//! `[[P]]` is a completely positive, trace-non-increasing map on `D(Hv)`
//! (Section 2.2 / Fig. 1b). For analysis and testing it is useful to have
//! `[[P]]` *as data*: this module computes its natural matrix
//! representation (acting on vectorised density operators) and its Choi
//! matrix, from which complete positivity, the trace condition, and the
//! Schrödinger–Heisenberg dual are all directly checkable.

use crate::ast::{Params, Stmt};
use crate::denot::denote;
use crate::register::Register;
use qdp_linalg::{C64, Matrix};
use qdp_sim::DensityMatrix;

/// The superoperator matrix `S` of `[[P]]` acting on row-major vectorised
/// operators: `vec([[P]]ρ) = S · vec(ρ)`, with `S` of dimension `4ⁿ × 4ⁿ`.
///
/// # Panics
///
/// Panics on additive programs (use [`crate::compile`] first).
pub fn superoperator_matrix(stmt: &Stmt, reg: &Register, params: &Params) -> Matrix {
    let n = reg.len();
    let dim = 1usize << n;
    let vec_dim = dim * dim;
    let mut out = Matrix::zeros(vec_dim, vec_dim);
    // Column k of S is vec([[P]] E_k) for the matrix unit E_k = |i⟩⟨j|.
    for i in 0..dim {
        for j in 0..dim {
            let col = i * dim + j;
            let mut unit = Matrix::zeros(dim, dim);
            unit.set(i, j, C64::ONE);
            let image = denote(
                stmt,
                reg,
                params,
                &DensityMatrix::from_matrix(n, &unit),
            );
            for (row, &value) in image.as_slice().iter().enumerate() {
                out.set(row, col, value);
            }
        }
    }
    out
}

/// The Choi matrix `J([[P]]) = Σ_{ij} |i⟩⟨j| ⊗ [[P]](|i⟩⟨j|)`.
/// `[[P]]` is completely positive iff `J ⪰ 0`.
pub fn choi_matrix(stmt: &Stmt, reg: &Register, params: &Params) -> Matrix {
    let n = reg.len();
    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim * dim, dim * dim);
    for i in 0..dim {
        for j in 0..dim {
            let mut unit = Matrix::zeros(dim, dim);
            unit.set(i, j, C64::ONE);
            let image = denote(stmt, reg, params, &DensityMatrix::from_matrix(n, &unit));
            for a in 0..dim {
                for b in 0..dim {
                    out.set(i * dim + a, j * dim + b, image.get(a, b));
                }
            }
        }
    }
    out
}

/// Applies the Schrödinger–Heisenberg dual `[[P]]*` to an observable
/// matrix: the unique map with `tr(O·[[P]]ρ) = tr([[P]]*(O)·ρ)` for all
/// `ρ` (used by the Sequence rule of the differentiation logic,
/// Lemma D.2).
pub fn dual_apply(stmt: &Stmt, reg: &Register, params: &Params, obs: &Matrix) -> Matrix {
    let n = reg.len();
    let dim = 1usize << n;
    assert!(obs.rows() == dim && obs.cols() == dim, "observable must be 2^n x 2^n");
    // [[P]]*(O)_{ji} = tr(O · [[P]](|i⟩⟨j|)): evaluate on matrix units.
    let mut out = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            let mut unit = Matrix::zeros(dim, dim);
            unit.set(i, j, C64::ONE);
            let image = denote(stmt, reg, params, &DensityMatrix::from_matrix(n, &unit));
            out.set(j, i, obs.trace_mul(&image.to_matrix()));
        }
    }
    out
}

/// Checks that `[[P]]` is an *admissible* superoperator: completely
/// positive (Choi PSD) and trace-non-increasing on states.
pub fn is_admissible(stmt: &Stmt, reg: &Register, params: &Params, tol: f64) -> bool {
    let choi = choi_matrix(stmt, reg, params);
    if !choi.is_hermitian(tol) || !choi.is_psd(tol) {
        return false;
    }
    // Trace condition: [[P]]*(I) ⊑ I.
    let dual_id = dual_apply(stmt, reg, params, &Matrix::identity(1 << reg.len()));
    let gap = &Matrix::identity(1 << reg.len()) - &dual_id;
    gap.is_hermitian(tol) && gap.is_psd(tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use qdp_linalg::CVector;

    fn setup(src: &str, params: &[(&str, f64)]) -> (Stmt, Register, Params) {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        let params = Params::from_pairs(params.iter().map(|&(k, v)| (k, v)));
        (p, reg, params)
    }

    #[test]
    fn superoperator_matrix_reproduces_denotation() {
        let (p, reg, params) = setup(
            "q1 *= RX(a); case M[q1] = 0 -> skip[q1], 1 -> q1 := |0> end",
            &[("a", 0.8)],
        );
        let s = superoperator_matrix(&p, &reg, &params);
        let mut rho = DensityMatrix::pure_zero(1);
        rho.apply_unitary(&Matrix::hadamard(), &[0]);
        let direct = denote(&p, &reg, &params, &rho);
        let vec_out = s.mul_vec(&CVector::new(rho.as_slice().to_vec()));
        let lifted = DensityMatrix::from_matrix(
            1,
            &Matrix::from_data(2, 2, vec_out.into_inner()),
        );
        assert!(direct.approx_eq(&lifted, 1e-10));
    }

    #[test]
    fn unitary_programs_are_admissible_and_trace_preserving() {
        let (p, reg, params) = setup("q1 *= RY(a); q1 *= H", &[("a", 1.1)]);
        assert!(is_admissible(&p, &reg, &params, 1e-8));
        let dual_id = dual_apply(&p, &reg, &params, &Matrix::identity(2));
        assert!(dual_id.approx_eq(&Matrix::identity(2), 1e-10), "unital dual");
    }

    #[test]
    fn aborting_programs_are_admissible_but_lossy() {
        let (p, reg, params) = setup(
            "q1 *= H; case M[q1] = 0 -> skip[q1], 1 -> abort[q1] end",
            &[],
        );
        assert!(is_admissible(&p, &reg, &params, 1e-8));
        let dual_id = dual_apply(&p, &reg, &params, &Matrix::identity(2));
        // [[P]]*(I) = |0⟩⟨0| in the X basis — strictly below identity.
        assert!(!dual_id.approx_eq(&Matrix::identity(2), 1e-6));
    }

    #[test]
    fn duality_identity_lemma_d_2() {
        let (p, reg, params) = setup(
            "q1 *= RX(a); while[2] M[q1] = 1 do q1 *= RY(a) done",
            &[("a", 0.9)],
        );
        let obs = Matrix::pauli_z();
        let dual_obs = dual_apply(&p, &reg, &params, &obs);
        for k in 0..2usize {
            let rho = DensityMatrix::from_matrix(1, &Matrix::basis_projector(2, k));
            let lhs = obs.trace_mul(&denote(&p, &reg, &params, &rho).to_matrix());
            let rhs = dual_obs.trace_mul(&rho.to_matrix());
            assert!(lhs.approx_eq(rhs, 1e-10), "basis state {k}");
        }
    }

    #[test]
    fn choi_of_identity_program_is_maximally_entangled_projector() {
        let (p, reg, params) = setup("skip[q1]", &[]);
        let choi = choi_matrix(&p, &reg, &params);
        // J(id) = Σ_{ij} |ii⟩⟨jj| — rank one with trace 2.
        assert!((choi.trace().re - 2.0).abs() < 1e-12);
        assert!(choi.is_psd(1e-9));
        assert!(choi.mul(&choi).approx_eq(&choi.scale(C64::real(2.0)), 1e-9));
    }

    #[test]
    fn two_qubit_program_superoperator_dimensions() {
        let (p, reg, params) = setup("q1, q2 *= RXX(a)", &[("a", 0.2)]);
        let s = superoperator_matrix(&p, &reg, &params);
        assert_eq!(s.rows(), 16);
        assert_eq!(s.cols(), 16);
        assert!(is_admissible(&p, &reg, &params, 1e-8));
    }
}
