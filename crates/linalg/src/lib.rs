//! # qdp-linalg
//!
//! Self-contained complex linear algebra used by the reproduction of
//! *On the Principles of Differentiable Quantum Programming Languages*
//! (PLDI 2020).
//!
//! The crate provides exactly what the quantum substrate needs and nothing
//! more:
//!
//! * [`C64`] — double-precision complex numbers,
//! * [`Matrix`] — dense, row-major complex matrices with the operations used
//!   by quantum semantics (multiplication, Kronecker product, adjoint, trace),
//! * [`eigen`] — a Jacobi eigensolver for Hermitian matrices (used to turn
//!   observables into projective measurements, Section 5 of the paper),
//! * [`pauli`] — the Pauli-string algebra from which parameterized rotations
//!   are generated.
//!
//! # Examples
//!
//! ```
//! use qdp_linalg::{C64, Matrix};
//!
//! let h = Matrix::hadamard();
//! let id = h.mul(&h); // H is self-inverse
//! assert!(id.approx_eq(&Matrix::identity(2), 1e-12));
//! assert_eq!(h.get(0, 1), C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0));
//! ```

pub mod complex;
pub mod eigen;
pub mod matrix;
pub mod pauli;
pub mod vector;

pub use complex::C64;
pub use eigen::HermitianEigen;
pub use matrix::Matrix;
pub use pauli::{Pauli, PauliString};
pub use vector::CVector;

/// Default absolute tolerance used by approximate comparisons in this
/// workspace.
pub const EPS: f64 = 1e-10;
