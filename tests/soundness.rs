//! Property-based soundness tests (Theorem 6.2 and Propositions 3.1, 4.2,
//! 7.2) on randomly generated programs.
//!
//! Programs are drawn over two qubits `q1, q2` and two parameters `a, b`,
//! with sequences, measurement cases and 2-bounded loops up to depth 3 —
//! enough to exercise every differentiation rule in combination. Generation
//! uses a seeded PRNG (the workspace's offline `rand` stand-in), so every run
//! checks the same program sample deterministically; bump `CASES` or add
//! seeds to widen the net.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use qdpl::ad::{differentiate, occurrence_count, semantics};
use qdpl::lang::ast::{Params, Stmt, Var};
use qdpl::lang::{compile, op_sem, parse_program, pretty, wf, Register};
use qdpl::linalg::Pauli;
use qdpl::sim::{DensityMatrix, Observable};

const CASES: usize = 24;

fn rand_axis(rng: &mut StdRng) -> Pauli {
    match rng.gen_range(0..3usize) {
        0 => Pauli::X,
        1 => Pauli::Y,
        _ => Pauli::Z,
    }
}

fn rand_qubit(rng: &mut StdRng) -> &'static str {
    if rng.gen::<bool>() {
        "q1"
    } else {
        "q2"
    }
}

fn rand_param(rng: &mut StdRng) -> &'static str {
    if rng.gen::<bool>() {
        "a"
    } else {
        "b"
    }
}

fn rand_leaf(rng: &mut StdRng) -> Stmt {
    match rng.gen_range(0..5usize) {
        0 => Stmt::rot(rand_axis(rng), rand_param(rng), rand_qubit(rng)),
        1 => Stmt::coupling(rand_axis(rng), rand_param(rng), "q1", "q2"),
        2 => Stmt::unitary(qdpl::lang::Gate::H, [Var::new(rand_qubit(rng))]),
        3 => Stmt::init(rand_qubit(rng)),
        _ => Stmt::skip([Var::new("q1"), Var::new("q2")]),
    }
}

fn rand_stmt(rng: &mut StdRng, depth: usize) -> Stmt {
    if depth == 0 || rng.gen_range(0..3usize) == 0 {
        return rand_leaf(rng);
    }
    match rng.gen_range(0..3usize) {
        0 => Stmt::Seq(
            Box::new(rand_stmt(rng, depth - 1)),
            Box::new(rand_stmt(rng, depth - 1)),
        ),
        1 => {
            let q = rand_qubit(rng);
            Stmt::case_qubit(q, rand_stmt(rng, depth - 1), rand_stmt(rng, depth - 1))
        }
        _ => {
            let q = rand_qubit(rng);
            Stmt::while_bounded(q, 2, rand_stmt(rng, depth - 1))
        }
    }
}

/// Draws the `i`-th well-formed random program of a deterministic stream.
fn wf_program(seed: u64) -> Stmt {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5);
    loop {
        let p = rand_stmt(&mut rng, 3);
        if wf::check(&p).is_ok() {
            return p;
        }
    }
}

fn fixed_input() -> DensityMatrix {
    let mut rho = DensityMatrix::pure_zero(2);
    rho.apply_unitary(&qdpl::linalg::Matrix::hadamard(), &[0]);
    rho.apply_unitary(
        &qdpl::linalg::Matrix::rotation_from_involution(&qdpl::linalg::Matrix::pauli_y(), 0.4),
        &[1],
    );
    rho
}

/// Theorem 6.2 (soundness): the transformed program computes the derivative
/// of the observable semantics, checked against central finite differences
/// for every parameter.
#[test]
fn theorem_6_2_derivative_matches_finite_difference() {
    let full_reg = Register::from_vars([Var::new("q1"), Var::new("q2")]);
    for case in 0..CASES {
        let p = wf_program(case as u64);
        // Re-register the program over both qubits so observables line up.
        let padded = Stmt::Seq(
            Box::new(Stmt::skip([Var::new("q1"), Var::new("q2")])),
            Box::new(p),
        );
        let params = Params::from_pairs([("a", 0.73), ("b", -0.41)]);
        let obs = Observable::pauli_z(2, 1);
        let rho = fixed_input();
        for name in ["a", "b"] {
            let diff = differentiate(&padded, name).expect("differentiable fragment");
            let analytic = diff.derivative(&params, &obs, &rho);
            let numeric = semantics::numeric_derivative(
                &padded, &full_reg, &params, name, &obs, &rho, 1e-5,
            );
            assert!(
                (analytic - numeric).abs() < 5e-6,
                "case {case} ∂/∂{name}: analytic {analytic} vs numeric {numeric}\n{}",
                pretty::to_source(&padded)
            );
        }
    }
}

/// Proposition 3.1: for normal programs the denotational semantics is the
/// sum of the operational trace multiset.
#[test]
fn proposition_3_1_denotation_sums_traces() {
    let reg = Register::from_vars([Var::new("q1"), Var::new("q2")]);
    for case in 0..CASES {
        let p = wf_program(1000 + case as u64);
        let params = Params::from_pairs([("a", 1.2), ("b", 0.3)]);
        let rho = fixed_input();
        let traces = op_sem::trace_multiset(&p, &reg, &params, &rho);
        let summed = op_sem::sum_traces(&traces, 2);
        let direct = qdpl::lang::denot::denote(&p, &reg, &params, &rho);
        assert!(
            summed.approx_eq(&direct, 1e-9),
            "case {case}:\n{}",
            pretty::to_source(&p)
        );
    }
}

/// Proposition 4.2: compilation preserves the non-zero trace multiset of the
/// additive derivative program.
#[test]
fn proposition_4_2_compile_preserves_traces() {
    for case in 0..CASES {
        let p = wf_program(2000 + case as u64);
        let diff = differentiate(&p, "a").expect("differentiable fragment");
        let additive = diff.additive();
        let reg = diff.ext_register().clone();
        let params = Params::from_pairs([("a", 0.9), ("b", -0.2)]);
        let rho = fixed_input().prepend_zero_ancilla();

        let lhs: Vec<DensityMatrix> = op_sem::trace_multiset(additive, &reg, &params, &rho)
            .into_iter()
            .filter(|r| r.trace() > 1e-10)
            .collect();
        let rhs: Vec<DensityMatrix> = compile::compile(additive)
            .iter()
            .flat_map(|q| op_sem::trace_multiset(q, &reg, &params, &rho))
            .filter(|r| r.trace() > 1e-10)
            .collect();
        assert!(
            op_sem::multisets_approx_eq(&lhs, &rhs, 1e-9),
            "case {case}: trace multisets differ: {} vs {}\n{}",
            lhs.len(),
            rhs.len(),
            pretty::to_source(&p)
        );
    }
}

/// Proposition 7.2: the compiled derivative-program count never exceeds the
/// occurrence count.
#[test]
fn proposition_7_2_bound() {
    for case in 0..CASES {
        let p = wf_program(3000 + case as u64);
        for name in ["a", "b"] {
            let m = differentiate(&p, name).expect("differentiable").compiled().len();
            let oc = occurrence_count(&p, name);
            assert!(
                m <= oc,
                "case {case} ∂/∂{name}: |#∂| = {m} > OC = {oc}\n{}",
                pretty::to_source(&p)
            );
        }
    }
}

/// Pretty-printer / parser round trip on random programs.
#[test]
fn pretty_parse_round_trip() {
    for case in 0..CASES {
        let p = wf_program(4000 + case as u64);
        let src = pretty::to_source(&p);
        let reparsed = parse_program(&src)
            .unwrap_or_else(|e| panic!("case {case}: re-parse failed: {e}\nsource:\n{src}"));
        // Equal up to sequence associativity (the parser right-associates).
        assert_eq!(reparsed.normalize_seq(), p.normalize_seq(), "case {case}");
    }
}

/// The compiled multiset of any derivative satisfies the Fig. 3 invariant
/// and contains only normal programs.
#[test]
fn compiled_derivatives_are_normal() {
    for case in 0..CASES {
        let p = wf_program(5000 + case as u64);
        let diff = differentiate(&p, "a").expect("differentiable");
        let compiled = compile::compile(diff.additive());
        assert!(compile::invariant_holds(&compiled), "case {case}");
        assert!(compiled.iter().all(Stmt::is_normal), "case {case}");
    }
}

/// The simplification pass preserves the denotational semantics over the
/// original register and never adds gates.
#[test]
fn simplify_preserves_semantics() {
    let reg = Register::from_vars([Var::new("q1"), Var::new("q2")]);
    for case in 0..CASES {
        let p = wf_program(6000 + case as u64);
        let simplified = qdpl::lang::opt::simplify(&p);
        let params = Params::from_pairs([("a", 0.6), ("b", -1.1)]);
        let rho = fixed_input();
        let before = qdpl::lang::denot::denote(&p, &reg, &params, &rho);
        let after = qdpl::lang::denot::denote(&simplified, &reg, &params, &rho);
        assert!(
            before.approx_eq(&after, 1e-9),
            "case {case}:\n{}",
            pretty::to_source(&p)
        );
        assert!(simplified.gate_count() <= p.gate_count(), "case {case}");
    }
}
