//! Statistical tests of the batched shot-noise estimator — the
//! `crates/sim/tests/sampler_stats.rs` discipline applied to
//! `qdp_ad::estimator::estimate_derivative_batched`.
//!
//! Everything runs on **seeded** streams, so every assertion is a
//! deterministic regression check rather than a flaky statistical gamble:
//! the empirical errors are fixed numbers for the fixed seed set, and the
//! bounds leave honest statistical headroom.
//!
//! The Chernoff budget of Section 7 prescribes `⌈m²/δ²⌉` shots for
//! additive error `δ` on a sum of `m` program read-outs; the estimator's
//! per-shot values are `m·λ` with `|λ| ≤ 1`, so the standard error of the
//! mean at that budget is at most `m/√shots = δ` (attained at maximal
//! shot variance). The empirical RMS over many seeds must come in at or
//! below that, the mean absolute error below `δ`, and a clear majority of
//! runs within `δ`.

use qdp_ad::estimator::{chernoff_shots, estimate_derivative_batched};
use qdp_ad::{differentiate, Differentiated, GradientEngine};
use qdp_lang::ast::Params;
use qdp_lang::parse_program;
use qdp_sim::{Observable, StateVector};
use std::sync::Mutex;

/// Serializes the thread-override test against every other test in this
/// binary: `set_max_threads` requires a quiesced process (a concurrently
/// running sibling test would hold acquired worker tokens across the
/// budget reset and re-inflate it on release, silently undoing the forced
/// configuration).
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn check_chernoff_budget(
    diff: &Differentiated,
    params: &Params,
    obs: &Observable,
    psi: &StateVector,
    delta: f64,
    seeds: std::ops::Range<u64>,
) {
    let _guard = serialized();
    let m = diff.compiled().len();
    let shots = chernoff_shots(m, delta);
    let exact = diff.derivative_pure(params, obs, psi);
    let trials = seeds.end - seeds.start;
    assert!(trials >= 20, "the contract spans at least 20 seeds");

    let mut sq_err_sum = 0.0;
    let mut abs_err_sum = 0.0;
    let mut within = 0u64;
    for seed in seeds {
        let err = estimate_derivative_batched(diff, params, obs, psi, shots, seed) - exact;
        sq_err_sum += err * err;
        abs_err_sum += err.abs();
        if err.abs() <= delta {
            within += 1;
        }
    }
    let rms = (sq_err_sum / trials as f64).sqrt();
    let mean_abs = abs_err_sum / trials as f64;
    assert!(
        rms <= 1.25 * delta,
        "m={m}: RMS error {rms} above Chernoff budget δ={delta}"
    );
    assert!(
        mean_abs <= delta,
        "m={m}: mean |error| {mean_abs} above δ={delta}"
    );
    // |error| ≤ δ holds for ~68% of runs in the Gaussian limit even at
    // maximal shot variance; require a clear majority.
    assert!(
        within * 2 > trials,
        "m={m}: only {within}/{trials} runs within δ={delta}"
    );
}

#[test]
fn straight_line_estimator_error_stays_within_chernoff_budget() {
    // Two occurrences of t → m = 2 compiled programs.
    let p = parse_program("q1 *= RX(t); q1 *= RY(t)").unwrap();
    let diff = differentiate(&p, "t").unwrap();
    let params = Params::from_pairs([("t", 0.8)]);
    let obs = Observable::pauli_z(1, 0);
    let psi = StateVector::zero_state(1);
    check_chernoff_budget(&diff, &params, &obs, &psi, 0.25, 100..124);
}

#[test]
fn branching_estimator_error_stays_within_chernoff_budget() {
    // Measurement control flow: the trajectories themselves are sampled,
    // not just the read-out. m = 3 occurrences of t.
    let p = parse_program(
        "q1 *= RX(t); case M[q1] = 0 -> q1 *= RY(t), 1 -> q1 *= RZ(t) end",
    )
    .unwrap();
    let diff = differentiate(&p, "t").unwrap();
    assert!(diff.compiled().len() >= 2, "multi-program multiset expected");
    let params = Params::from_pairs([("t", 1.1)]);
    let obs = Observable::pauli_z(1, 0);
    let psi = StateVector::zero_state(1);
    check_chernoff_budget(&diff, &params, &obs, &psi, 0.3, 500..521);
}

#[test]
fn bounded_while_estimator_error_stays_within_chernoff_budget() {
    let p = parse_program("q1 *= RY(t); while[2] M[q1] = 1 do q1 *= RY(t) done").unwrap();
    let diff = differentiate(&p, "t").unwrap();
    let params = Params::from_pairs([("t", 0.7)]);
    let obs = Observable::pauli_z(1, 0);
    let psi = StateVector::zero_state(1);
    check_chernoff_budget(&diff, &params, &obs, &psi, 0.35, 40..62);
}

#[test]
fn estimator_error_shrinks_as_the_budget_grows() {
    let _guard = serialized();
    let p = parse_program("q1 *= RX(t); q1 *= RY(t)").unwrap();
    let diff = differentiate(&p, "t").unwrap();
    let params = Params::from_pairs([("t", 0.8)]);
    let obs = Observable::pauli_z(1, 0);
    let psi = StateVector::zero_state(1);
    let exact = diff.derivative_pure(&params, &obs, &psi);
    let rms = |delta: f64| {
        let shots = chernoff_shots(diff.compiled().len(), delta);
        let sum: f64 = (0..16u64)
            .map(|seed| {
                let err = estimate_derivative_batched(&diff, &params, &obs, &psi, shots, seed)
                    - exact;
                err * err
            })
            .sum();
        (sum / 16.0).sqrt()
    };
    // Tightening δ by 3x grows the budget 9x and must shrink the
    // (deterministic, seeded) empirical RMS.
    assert!(rms(0.1) < rms(0.3));
}

#[test]
fn batched_estimator_is_bitwise_deterministic_under_forced_thread_counts() {
    let _guard = serialized();
    let p = parse_program(
        "q1 *= RX(t); case M[q1] = 0 -> q2 *= RY(u), 1 -> q2 := |0> end; \
         while[2] M[q2] = 1 do q2 *= RY(t) done",
    )
    .unwrap();
    let diff = differentiate(&p, "t").unwrap();
    let engine = GradientEngine::new(&p).unwrap();
    let params = Params::from_pairs([("t", 0.9), ("u", 1.7)]);
    let obs = Observable::pauli_z(2, 1);
    let psi = StateVector::zero_state(2);
    // More shots than one SHOT_TILE so the tile fan-out actually splits.
    let shots = qdp_sim::SHOT_TILE * 3 + 17;

    let mut per_config: Vec<(u64, u64, Vec<u64>)> = Vec::new();
    for threads in [1usize, 2, 8] {
        qdp_par::set_max_threads(threads);
        let est = estimate_derivative_batched(&diff, &params, &obs, &psi, shots, 99).to_bits();
        let value = engine.value_pure_shots(&params, &obs, &psi, shots, 7).to_bits();
        let grad: Vec<u64> = engine
            .gradient_pure_shots(&params, &obs, &psi, 700, 13)
            .into_values()
            .map(f64::to_bits)
            .collect();
        per_config.push((est, value, grad));
    }
    qdp_par::set_max_threads(0);
    assert_eq!(per_config[0], per_config[1], "1 vs 2 threads");
    assert_eq!(per_config[0], per_config[2], "1 vs 8 threads");
}
