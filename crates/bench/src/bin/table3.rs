//! Regenerates **Table 3** of the paper (Appendix F.2): the full 24-row
//! benchmark over QNN/VQE/QAOA at small/medium/large scale with
//! basic/shared/if/while variants.
//!
//! Usage: `cargo run --release -p qdp-bench --bin table3`

fn main() {
    println!("Table 3 — compiler output on all benchmark instances");
    println!("(measured by this reproduction; paper values in parentheses)\n");
    let rows = qdp_bench::table3_rows();
    print!("{}", qdp_bench::render_comparison(&rows));

    let tight = rows
        .iter()
        .filter(|(m, _)| !m.name.contains(",w") && m.derivative_programs == m.oc)
        .count();
    let strict = rows
        .iter()
        .filter(|(m, _)| m.name.contains(",w") && m.derivative_programs < m.oc)
        .count();
    println!("\nnon-while rows where the Prop. 7.2 bound is tight: {tight}");
    println!(
        "while rows where |#∂| < OC (aborting unrollings optimised out, paper note (3)): {strict}"
    );

    println!("\nShot-noise execution cost (Section 7 Chernoff budgets):\n");
    print!("{}", qdp_bench::render_shot_budgets(&rows, &[0.3, 0.1, 0.05]));
}
