//! First-order optimizers for the training loop.
//!
//! The paper trains with plain gradient descent; momentum and Adam are
//! provided as drop-in extensions for the ablation benchmarks.

use std::collections::BTreeMap;

/// A parameter-vector optimizer consuming gradients keyed by name.
pub trait Optimizer {
    /// Updates `params` in place given the gradient.
    fn step(&mut self, params: &mut BTreeMap<String, f64>, grads: &BTreeMap<String, f64>);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Vanilla gradient descent `θ ← θ − η·∇`.
#[derive(Clone, Debug)]
pub struct GradientDescent {
    /// Learning rate η.
    pub learning_rate: f64,
}

impl GradientDescent {
    /// Creates a gradient-descent optimizer.
    pub fn new(learning_rate: f64) -> Self {
        GradientDescent { learning_rate }
    }
}

impl Optimizer for GradientDescent {
    fn step(&mut self, params: &mut BTreeMap<String, f64>, grads: &BTreeMap<String, f64>) {
        for (name, g) in grads {
            if let Some(p) = params.get_mut(name) {
                *p -= self.learning_rate * g;
            }
        }
    }

    fn name(&self) -> &'static str {
        "gradient-descent"
    }
}

/// Gradient descent with classical momentum.
#[derive(Clone, Debug)]
pub struct Momentum {
    /// Learning rate η.
    pub learning_rate: f64,
    /// Momentum coefficient μ.
    pub momentum: f64,
    velocity: BTreeMap<String, f64>,
}

impl Momentum {
    /// Creates a momentum optimizer.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        Momentum {
            learning_rate,
            momentum,
            velocity: BTreeMap::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut BTreeMap<String, f64>, grads: &BTreeMap<String, f64>) {
        for (name, g) in grads {
            let v = self.velocity.entry(name.clone()).or_insert(0.0);
            *v = self.momentum * *v - self.learning_rate * g;
            if let Some(p) = params.get_mut(name) {
                *p += *v;
            }
        }
    }

    fn name(&self) -> &'static str {
        "momentum"
    }
}

/// The Adam optimizer (Kingma & Ba) with the usual bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate α.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Stabiliser ε.
    pub epsilon: f64,
    step_count: u64,
    first: BTreeMap<String, f64>,
    second: BTreeMap<String, f64>,
}

impl Adam {
    /// Creates Adam with the standard defaults `β₁=0.9, β₂=0.999, ε=1e-8`.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            first: BTreeMap::new(),
            second: BTreeMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut BTreeMap<String, f64>, grads: &BTreeMap<String, f64>) {
        self.step_count += 1;
        let t = self.step_count as i32;
        for (name, g) in grads {
            let m = self.first.entry(name.clone()).or_insert(0.0);
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            let v = self.second.entry(name.clone()).or_insert(0.0);
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / (1.0 - self.beta1.powi(t));
            let v_hat = *v / (1.0 - self.beta2.powi(t));
            if let Some(p) = params.get_mut(name) {
                *p -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(params: &BTreeMap<String, f64>) -> BTreeMap<String, f64> {
        // ∇ of f(x, y) = (x−3)² + (y+1)².
        let mut g = BTreeMap::new();
        g.insert("x".to_string(), 2.0 * (params["x"] - 3.0));
        g.insert("y".to_string(), 2.0 * (params["y"] + 1.0));
        g
    }

    fn run(optimizer: &mut dyn Optimizer, iterations: usize) -> BTreeMap<String, f64> {
        let mut params =
            BTreeMap::from([("x".to_string(), 0.0), ("y".to_string(), 0.0)]);
        for _ in 0..iterations {
            let g = quadratic_grad(&params);
            optimizer.step(&mut params, &g);
        }
        params
    }

    #[test]
    fn gradient_descent_converges_on_quadratic() {
        let p = run(&mut GradientDescent::new(0.1), 200);
        assert!((p["x"] - 3.0).abs() < 1e-6);
        assert!((p["y"] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let p = run(&mut Momentum::new(0.05, 0.8), 300);
        assert!((p["x"] - 3.0).abs() < 1e-5);
        assert!((p["y"] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = run(&mut Adam::new(0.2), 500);
        assert!((p["x"] - 3.0).abs() < 1e-3);
        assert!((p["y"] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn step_ignores_unknown_parameters() {
        let mut params = BTreeMap::from([("x".to_string(), 1.0)]);
        let grads = BTreeMap::from([("ghost".to_string(), 5.0)]);
        GradientDescent::new(0.1).step(&mut params, &grads);
        assert_eq!(params["x"], 1.0);
        assert_eq!(params.len(), 1);
    }
}
