//! Quickstart: differentiate a quantum program and check the result.
//!
//! Run with: `cargo run --example quickstart`

use qdpl::ad::{differentiate, semantics};
use qdpl::lang::ast::Params;
use qdpl::lang::{parse_program, pretty, Register};
use qdpl::sim::{DensityMatrix, Observable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a parameterized quantum program (Section 3 of the paper).
    let src = "q1 *= RX(t); q1 *= RY(t)";
    let program = parse_program(src)?;
    println!("program P(t):\n{}\n", pretty::to_source(&program));

    // 2. Differentiate it with respect to `t` (Fig. 4 code transformation,
    //    then Fig. 3 compilation).
    let diff = differentiate(&program, "t")?;
    println!(
        "additive derivative ∂/∂t(P):\n{}\n",
        pretty::to_source(diff.additive())
    );
    println!("compiles to {} normal programs:", diff.compiled().len());
    for (i, p) in diff.compiled().iter().enumerate() {
        println!("--- P'_{i} ---\n{}", pretty::to_source(p));
    }

    // 3. Evaluate the derivative of the observable semantics (Def. 5.3) and
    //    confirm against a finite difference.
    let params = Params::from_pairs([("t", 0.7)]);
    let obs = Observable::pauli_z(1, 0);
    let rho = DensityMatrix::pure_zero(1);
    let analytic = diff.derivative(&params, &obs, &rho);
    let reg = Register::from_program(&program);
    let numeric =
        semantics::numeric_derivative(&program, &reg, &params, "t", &obs, &rho, 1e-5);
    println!("\nd/dt tr(Z·[[P(t)]]ρ) at t=0.7:");
    println!("  code transformation: {analytic:.9}");
    println!("  finite difference:   {numeric:.9}");
    assert!((analytic - numeric).abs() < 1e-7);
    println!("  agreement within 1e-7 ✓");
    Ok(())
}
