//! Targeted gate-application kernels.
//!
//! These are the hot loops of the simulator. A `k`-qubit operator is applied
//! to an amplitude array without ever materialising the `2ⁿ × 2ⁿ` lifted
//! operator. Density matrices reuse the same kernel by viewing a `2ⁿ × 2ⁿ`
//! array as a state vector over `2n` qubits (row qubits first).

use qdp_linalg::{C64, Matrix};

/// Bit position (from the least significant end) of qubit `q` in an
/// `n`-qubit basis index. Qubit 0 is the most significant bit.
#[inline]
pub fn qubit_bit(n: usize, q: usize) -> usize {
    debug_assert!(q < n, "qubit index {q} out of range for {n} qubits");
    n - 1 - q
}

/// Applies an arbitrary `2ᵏ × 2ᵏ` matrix `m` to the amplitudes `amps` of an
/// `n`-qubit register on the given distinct `targets`.
///
/// The matrix need not be unitary — measurement operators and Kraus operators
/// are applied with the same kernel. Target order is significant: `targets[0]`
/// is the most significant qubit of the local index into `m`.
///
/// # Panics
///
/// Panics when dimensions are inconsistent or targets repeat.
pub fn apply_matrix(amps: &mut [C64], n: usize, m: &Matrix, targets: &[usize]) {
    let k = targets.len();
    assert!(m.rows() == 1 << k && m.cols() == 1 << k, "operator dimension must be 2^{k}");
    assert_eq!(amps.len(), 1 << n, "amplitude array must have length 2^{n}");
    for (i, t) in targets.iter().enumerate() {
        assert!(*t < n, "target {t} out of range for {n} qubits");
        for u in &targets[i + 1..] {
            assert_ne!(t, u, "duplicate target qubit {t}");
        }
    }

    let dim_local = 1usize << k;
    let masks: Vec<usize> = targets.iter().map(|&t| 1usize << qubit_bit(n, t)).collect();
    let all_mask: usize = masks.iter().sum();

    // Offsets of each local basis state within the full index.
    let mut offsets = vec![0usize; dim_local];
    for (a, off) in offsets.iter_mut().enumerate() {
        for (j, mask) in masks.iter().enumerate() {
            if a & (1 << (k - 1 - j)) != 0 {
                *off |= mask;
            }
        }
    }

    let mut scratch = vec![C64::ZERO; dim_local];
    let full = 1usize << n;
    let mut base = 0usize;
    while base < full {
        if base & all_mask == 0 {
            for (a, &off) in offsets.iter().enumerate() {
                scratch[a] = amps[base | off];
            }
            for a in 0..dim_local {
                let mut acc = C64::ZERO;
                for (b, &sb) in scratch.iter().enumerate() {
                    acc = acc.mul_add(m.get(a, b), sb);
                }
                amps[base | offsets[a]] = acc;
            }
        }
        base += 1;
    }
}

/// Left-multiplies a square amplitude array (row-major, dimension `2ⁿ`) by
/// the operator `m` on `targets`: `A ← (m lifted) · A`.
pub fn left_mul(a: &mut [C64], n: usize, m: &Matrix, targets: &[usize]) {
    // Row index bits occupy the high half of the flattened 2n-qubit index,
    // so row qubit q maps to qubit q of the doubled register.
    apply_matrix(a, 2 * n, m, targets);
}

/// Right-multiplies a square amplitude array by the operator `m` on
/// `targets`: `A ← A · (m lifted)`.
pub fn right_mul(a: &mut [C64], n: usize, m: &Matrix, targets: &[usize]) {
    // (A·M)_{ij} = Σ_b A_{ib} M_{bj} = Σ_b (Mᵀ)_{jb} A_{ib}: apply Mᵀ on the
    // column qubits, which sit in the low half of the doubled register.
    let shifted: Vec<usize> = targets.iter().map(|&t| t + n).collect();
    apply_matrix(a, 2 * n, &m.transpose(), &shifted);
}

/// Embeds a `2ᵏ × 2ᵏ` operator on `targets` into the full `2ⁿ × 2ⁿ` space.
///
/// This is the *slow, obviously-correct* lift used by tests to validate the
/// kernels; production paths never call it.
pub fn embed(n: usize, m: &Matrix, targets: &[usize]) -> Matrix {
    let k = targets.len();
    assert!(m.rows() == 1 << k && m.cols() == 1 << k);
    let full = 1usize << n;
    let masks: Vec<usize> = targets.iter().map(|&t| 1usize << qubit_bit(n, t)).collect();
    let all_mask: usize = masks.iter().sum();

    let local_index = |full_index: usize| -> usize {
        let mut a = 0usize;
        for (j, mask) in masks.iter().enumerate() {
            if full_index & mask != 0 {
                a |= 1 << (k - 1 - j);
            }
        }
        a
    };

    let mut out = Matrix::zeros(full, full);
    for i in 0..full {
        for j in 0..full {
            if (i & !all_mask) == (j & !all_mask) {
                out.set(i, j, m.get(local_index(i), local_index(j)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_linalg::CVector;

    fn rand_amps(n: usize, seed: u64) -> Vec<C64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        (0..1usize << n).map(|_| C64::new(next(), next())).collect()
    }

    #[test]
    fn single_qubit_kernel_matches_embed() {
        let h = Matrix::hadamard();
        for n in 1..=4usize {
            for t in 0..n {
                let mut amps = rand_amps(n, (n * 10 + t) as u64);
                let expected = embed(n, &h, &[t]).mul_vec(&CVector::new(amps.clone()));
                apply_matrix(&mut amps, n, &h, &[t]);
                assert!(CVector::new(amps).approx_eq(&expected, 1e-12), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn two_qubit_kernel_matches_embed() {
        let cnot = Matrix::cnot();
        for n in 2..=4usize {
            for t0 in 0..n {
                for t1 in 0..n {
                    if t0 == t1 {
                        continue;
                    }
                    let mut amps = rand_amps(n, (n * 100 + t0 * 10 + t1) as u64);
                    let expected =
                        embed(n, &cnot, &[t0, t1]).mul_vec(&CVector::new(amps.clone()));
                    apply_matrix(&mut amps, n, &cnot, &[t0, t1]);
                    assert!(
                        CVector::new(amps).approx_eq(&expected, 1e-12),
                        "n={n} targets=({t0},{t1})"
                    );
                }
            }
        }
    }

    #[test]
    fn three_qubit_kernel_matches_embed() {
        // An 8×8 operator (Toffoli-like permutation) on scattered targets.
        let mut toffoli = Matrix::identity(8);
        toffoli.set(6, 6, C64::ZERO);
        toffoli.set(7, 7, C64::ZERO);
        toffoli.set(6, 7, C64::ONE);
        toffoli.set(7, 6, C64::ONE);
        for (n, targets) in [(3usize, vec![0usize, 1, 2]), (4, vec![3, 0, 2]), (5, vec![4, 1, 3])] {
            let mut amps = rand_amps(n, 7 * n as u64);
            let expected = embed(n, &toffoli, &targets).mul_vec(&CVector::new(amps.clone()));
            apply_matrix(&mut amps, n, &toffoli, &targets);
            assert!(
                CVector::new(amps).approx_eq(&expected, 1e-12),
                "n={n} targets={targets:?}"
            );
        }
    }

    #[test]
    fn target_order_is_significant() {
        // CNOT with control q1 / target q0 differs from control q0 / target q1.
        let cnot = Matrix::cnot();
        let mut a = vec![C64::ZERO; 4];
        a[1] = C64::ONE; // |01⟩: q0=0, q1=1
        apply_matrix(&mut a, 2, &cnot, &[1, 0]); // control q1 → flips q0
        assert!(a[3].approx_eq(C64::ONE, 1e-15)); // |11⟩
    }

    #[test]
    fn left_right_mul_match_matrix_products() {
        let n = 2usize;
        let dim = 1 << n;
        let rho_data = rand_amps(2 * n, 99);
        let rho = Matrix::from_data(dim, dim, rho_data.clone());
        let u = Matrix::hadamard();
        for t in 0..n {
            let lifted = embed(n, &u, &[t]);

            let mut left = rho_data.clone();
            left_mul(&mut left, n, &u, &[t]);
            let expected = lifted.mul(&rho);
            assert!(Matrix::from_data(dim, dim, left).approx_eq(&expected, 1e-12));

            let mut right = rho_data.clone();
            right_mul(&mut right, n, &u, &[t]);
            let expected = rho.mul(&lifted);
            assert!(Matrix::from_data(dim, dim, right).approx_eq(&expected, 1e-12));
        }
    }

    #[test]
    fn non_unitary_operators_apply_fine() {
        // Projector |0⟩⟨0| on qubit 1 of 2.
        let p0 = Matrix::basis_projector(2, 0);
        let mut amps = vec![C64::ONE.scale(0.5); 4];
        apply_matrix(&mut amps, 2, &p0, &[1]);
        // Amplitudes with q1=1 are killed.
        assert_eq!(amps[1], C64::ZERO);
        assert_eq!(amps[3], C64::ZERO);
        assert!(amps[0].approx_eq(C64::real(0.5), 1e-15));
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_targets_panic() {
        let mut amps = vec![C64::ZERO; 4];
        apply_matrix(&mut amps, 2, &Matrix::cnot(), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_panics() {
        let mut amps = vec![C64::ZERO; 2];
        apply_matrix(&mut amps, 1, &Matrix::hadamard(), &[1]);
    }
}
