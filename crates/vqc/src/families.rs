//! Benchmark VQC families (Section 8.2 / Appendix F.2 of the paper).
//!
//! Three families of variational circuits — QNN [Farhi–Neven], VQE
//! [Peruzzo et al.] and QAOA [Farhi et al.] — built from alternating
//! *rotation* and *entangling* stages, then enriched with measurement
//! controls: plain `case` statements (`i`-variants) or 2-bounded `while`
//! loops (`w`-variants), at small/medium/large scale.
//!
//! The differentiated parameter is always `theta`; it is *shared* across a
//! configurable number of gates per block (`shared_occurrences`), which sets
//! the occurrence count `OC(·)` the paper's tables report. All other gates
//! carry fresh auxiliary parameters.

use qdp_lang::ast::{Gate, Stmt, Var};
use qdp_linalg::Pauli;

/// The three VQC families of the paper's benchmark (Table 2/3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Quantum neural network: Z-X-Z rotation stage + all-pairs XX coupling.
    Qnn,
    /// Variational quantum eigensolver: X-Z stage, H+CNOT entangler,
    /// Z-X-Z stage.
    Vqe,
    /// Quantum approximate optimisation: ZZ cost ring + X mixer.
    Qaoa,
}

impl Family {
    /// Display name used in the report tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Qnn => "QNN",
            Family::Vqe => "VQE",
            Family::Qaoa => "QAOA",
        }
    }
}

/// Control-flow enrichment of an instance (the `b`/`s`/`i`/`w` suffixes of
/// Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// `b` — one basic block, `theta` occurs once.
    Basic,
    /// `s` — one block with `theta` shared across a stage.
    Shared,
    /// `i` — blocks joined by measurement `case` layers.
    If,
    /// `w` — blocks wrapped in 2-bounded `while` loops.
    While,
}

impl Control {
    /// The table suffix (`b`, `s`, `i`, `w`).
    pub fn suffix(self) -> char {
        match self {
            Control::Basic => 'b',
            Control::Shared => 's',
            Control::If => 'i',
            Control::While => 'w',
        }
    }
}

/// Full description of one benchmark instance.
#[derive(Clone, Debug)]
pub struct InstanceConfig {
    /// Which circuit family.
    pub family: Family,
    /// Display name, e.g. `"QNN_{M,i}"`.
    pub name: String,
    /// Total qubits in the register.
    pub total_qubits: usize,
    /// Qubits each block acts on (the first `active_qubits`).
    pub active_qubits: usize,
    /// Number of sequential block groups (`d`); `i`/`w` variants add `d-1`
    /// control layers after the first block.
    pub depth: usize,
    /// Control-flow enrichment.
    pub control: Control,
    /// Occurrences of `theta` per block (`c`); ignored for `Basic`.
    pub shared_occurrences: usize,
}

impl InstanceConfig {
    /// Builds the instance program.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configurations (more active than total qubits,
    /// zero depth, shared occurrences exceeding the block's parameterized
    /// gate count).
    pub fn build(&self) -> Stmt {
        assert!(self.active_qubits <= self.total_qubits);
        assert!(self.active_qubits >= 2, "blocks need at least two qubits");
        assert!(self.depth >= 1);
        let mut aux = AuxParams::new();
        let mut groups: Vec<Stmt> = Vec::new();

        groups.push(self.block(&mut aux));
        for _ in 1..self.depth {
            let layer = match self.control {
                Control::Basic | Control::Shared => self.block(&mut aux),
                Control::If => Stmt::Case {
                    qs: vec![qvar(1)],
                    arms: vec![self.block(&mut aux), self.block(&mut aux)],
                },
                Control::While => Stmt::while_bounded(qvar(1), 2, self.block(&mut aux)),
            };
            groups.push(layer);
        }

        // Touch every declared qubit so the register has the advertised
        // width (idle qubits carry a trailing skip).
        if self.active_qubits < self.total_qubits {
            let idle: Vec<Var> = (self.active_qubits + 1..=self.total_qubits)
                .map(qvar)
                .collect();
            groups.push(Stmt::skip(idle));
        }
        Stmt::seq(groups)
    }

    /// One rotation/entangle block with `theta` shared on the first
    /// `shared_occurrences` parameterized slots.
    fn block(&self, aux: &mut AuxParams) -> Stmt {
        let k = self.active_qubits;
        let budget = match self.control {
            Control::Basic => 1,
            _ => self.shared_occurrences,
        };
        let mut shared = SharedBudget::new(budget);
        let mut stmts: Vec<Stmt> = Vec::new();
        match self.family {
            Family::Qnn => {
                // Rotation stage Z-X-Z; theta is shared on the X sub-stage.
                for i in 1..=k {
                    stmts.push(rot(Pauli::Z, aux.fresh(), i));
                }
                for i in 1..=k {
                    stmts.push(rot_shared(Pauli::X, &mut shared, aux, i));
                }
                for i in 1..=k {
                    stmts.push(rot(Pauli::Z, aux.fresh(), i));
                }
                // Entangling stage: XX coupling on all pairs; remaining
                // shared budget lands on the first couplings.
                for i in 1..=k {
                    for j in (i + 1)..=k {
                        stmts.push(coupling_shared(Pauli::X, &mut shared, aux, i, j));
                    }
                }
            }
            Family::Vqe => {
                for i in 1..=k {
                    stmts.push(rot_shared(Pauli::X, &mut shared, aux, i));
                }
                for i in 1..=k {
                    stmts.push(rot(Pauli::Z, aux.fresh(), i));
                }
                for i in 1..=k {
                    stmts.push(Stmt::unitary(Gate::H, [qvar(i)]));
                }
                for i in 1..=k {
                    let j = i % k + 1;
                    stmts.push(Stmt::unitary(Gate::Cnot, [qvar(i), qvar(j)]));
                }
                for (axis_idx, axis) in [Pauli::Z, Pauli::X, Pauli::Z].into_iter().enumerate() {
                    let _ = axis_idx;
                    for i in 1..=k {
                        stmts.push(rot(axis, aux.fresh(), i));
                    }
                }
            }
            Family::Qaoa => {
                // Appendix F.2: "entangles using H and CNOT in the first
                // stage, and then performs parameterized X rotations on the
                // second stage" — plus the cost-phase RZ layer; theta shares
                // the mixer stage.
                for i in 1..=k {
                    stmts.push(Stmt::unitary(Gate::H, [qvar(i)]));
                }
                for i in 1..=k {
                    let j = i % k + 1;
                    stmts.push(Stmt::unitary(Gate::Cnot, [qvar(i), qvar(j)]));
                }
                for i in 1..=k {
                    stmts.push(rot(Pauli::Z, aux.fresh(), i));
                }
                for i in 1..=k {
                    stmts.push(rot_shared(Pauli::X, &mut shared, aux, i));
                }
            }
        }
        assert!(
            shared.remaining == 0,
            "shared_occurrences {} exceeds the block's shareable slots",
            budget
        );
        Stmt::seq(stmts)
    }
}

/// The qubit variable `q{i}`.
fn qvar(i: usize) -> Var {
    Var::new(format!("q{i}"))
}

fn rot(axis: Pauli, param: String, qubit: usize) -> Stmt {
    Stmt::rot(axis, param, qvar(qubit))
}

fn rot_shared(axis: Pauli, shared: &mut SharedBudget, aux: &mut AuxParams, qubit: usize) -> Stmt {
    Stmt::rot(axis, shared.take(aux), qvar(qubit))
}

fn coupling_shared(
    axis: Pauli,
    shared: &mut SharedBudget,
    aux: &mut AuxParams,
    q1: usize,
    q2: usize,
) -> Stmt {
    Stmt::coupling(axis, shared.take(aux), qvar(q1), qvar(q2))
}

/// Generator for fresh auxiliary parameter names `w0, w1, …`.
struct AuxParams {
    next: usize,
}

impl AuxParams {
    fn new() -> Self {
        AuxParams { next: 0 }
    }

    fn fresh(&mut self) -> String {
        let name = format!("w{}", self.next);
        self.next += 1;
        name
    }
}

/// Doles out the shared parameter `theta` a bounded number of times, then
/// falls back to fresh auxiliary names.
struct SharedBudget {
    remaining: usize,
}

impl SharedBudget {
    fn new(budget: usize) -> Self {
        SharedBudget { remaining: budget }
    }

    fn take(&mut self, aux: &mut AuxParams) -> String {
        if self.remaining > 0 {
            self.remaining -= 1;
            "theta".to_string()
        } else {
            aux.fresh()
        }
    }
}

/// The name of the shared, differentiated parameter in every instance.
pub const THETA: &str = "theta";

/// The 24 instances of the paper's Table 3 (Table 2 is the M/L subset).
///
/// Structural knobs (qubits, depth, sharing) are chosen to match the paper's
/// reported `OC(·)` and `#qb` columns for the `i`-variants exactly; see
/// EXPERIMENTS.md for the measured-vs-paper comparison of the remaining
/// columns.
pub fn paper_instances() -> Vec<InstanceConfig> {
    let mut out = Vec::new();
    let spec: &[(Family, &str, usize, usize, usize, Control, usize)] = &[
        // family, size, total, active, depth, control, shared
        (Family::Qnn, "S,b", 4, 4, 1, Control::Basic, 1),
        (Family::Qnn, "S,s", 4, 4, 1, Control::Shared, 5),
        (Family::Qnn, "S,i", 4, 4, 2, Control::If, 5),
        (Family::Qnn, "S,w", 4, 4, 2, Control::While, 5),
        (Family::Qnn, "M,i", 18, 6, 3, Control::If, 8),
        (Family::Qnn, "M,w", 18, 6, 4, Control::While, 8),
        (Family::Qnn, "L,i", 36, 6, 6, Control::If, 8),
        (Family::Qnn, "L,w", 36, 6, 6, Control::While, 8),
        (Family::Vqe, "S,b", 2, 2, 1, Control::Basic, 1),
        (Family::Vqe, "S,s", 2, 2, 1, Control::Shared, 2),
        (Family::Vqe, "S,i", 2, 2, 2, Control::If, 2),
        (Family::Vqe, "S,w", 2, 2, 2, Control::While, 2),
        (Family::Vqe, "M,i", 12, 5, 3, Control::If, 5),
        (Family::Vqe, "M,w", 12, 5, 4, Control::While, 5),
        (Family::Vqe, "L,i", 40, 8, 5, Control::If, 8),
        (Family::Vqe, "L,w", 40, 8, 5, Control::While, 8),
        (Family::Qaoa, "S,b", 3, 3, 1, Control::Basic, 1),
        (Family::Qaoa, "S,s", 3, 3, 1, Control::Shared, 3),
        (Family::Qaoa, "S,i", 3, 3, 2, Control::If, 3),
        (Family::Qaoa, "S,w", 3, 3, 2, Control::While, 3),
        (Family::Qaoa, "M,i", 18, 6, 3, Control::If, 6),
        (Family::Qaoa, "M,w", 18, 6, 4, Control::While, 6),
        (Family::Qaoa, "L,i", 36, 6, 6, Control::If, 6),
        (Family::Qaoa, "L,w", 36, 6, 6, Control::While, 6),
    ];
    for &(family, size, total, active, depth, control, shared) in spec {
        out.push(InstanceConfig {
            family,
            name: format!("{}_{{{}}}", family.name(), size),
            total_qubits: total,
            active_qubits: active,
            depth,
            control,
            shared_occurrences: shared,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_ad::occurrence_count;
    use qdp_lang::wf;

    #[test]
    fn all_paper_instances_build_and_are_well_formed() {
        for config in paper_instances() {
            let p = config.build();
            wf::check(&p).unwrap_or_else(|e| panic!("{}: {e}", config.name));
            assert_eq!(
                p.qvar().len(),
                config.total_qubits,
                "{}: qubit count",
                config.name
            );
        }
    }

    #[test]
    fn occurrence_counts_follow_the_structure() {
        for config in paper_instances() {
            let p = config.build();
            let oc = occurrence_count(&p, THETA);
            let c = match config.control {
                Control::Basic => 1,
                _ => config.shared_occurrences,
            };
            let expected = match config.control {
                Control::Basic | Control::Shared => c * config.depth,
                Control::If => c * config.depth,
                Control::While => c * (1 + 2 * (config.depth - 1)),
            };
            assert_eq!(oc, expected, "{}", config.name);
        }
    }

    #[test]
    fn qnn_medium_if_matches_paper_row() {
        // Table 2, QNN_{M,i}: OC = 24, 165 gates, 18 qubits.
        let config = paper_instances()
            .into_iter()
            .find(|c| c.name == "QNN_{M,i}")
            .unwrap();
        let p = config.build();
        assert_eq!(occurrence_count(&p, THETA), 24);
        assert_eq!(p.gate_count(), 165);
        assert_eq!(p.qvar().len(), 18);
    }

    #[test]
    fn qnn_large_if_matches_paper_row() {
        // Table 2, QNN_{L,i}: OC = 48, 363 gates, 36 qubits.
        let config = paper_instances()
            .into_iter()
            .find(|c| c.name == "QNN_{L,i}")
            .unwrap();
        let p = config.build();
        assert_eq!(occurrence_count(&p, THETA), 48);
        assert_eq!(p.gate_count(), 363);
        assert_eq!(p.qvar().len(), 36);
    }

    #[test]
    fn vqe_small_block_matches_paper_gate_count() {
        // Table 3, VQE_{S,b}: 14 gates on 2 qubits.
        let config = paper_instances()
            .into_iter()
            .find(|c| c.name == "VQE_{S,b}")
            .unwrap();
        let p = config.build();
        assert_eq!(p.gate_count(), 14);
        assert_eq!(occurrence_count(&p, THETA), 1);
    }

    #[test]
    fn shared_variants_share_exactly_c_occurrences() {
        let config = paper_instances()
            .into_iter()
            .find(|c| c.name == "QNN_{S,s}")
            .unwrap();
        assert_eq!(occurrence_count(&config.build(), THETA), 5);
    }

    #[test]
    fn while_variants_have_larger_oc_than_if_variants() {
        let instances = paper_instances();
        for family in [Family::Qnn, Family::Vqe, Family::Qaoa] {
            for size in ["M", "L"] {
                let find = |ctrl: char| {
                    instances
                        .iter()
                        .find(|c| c.name == format!("{}_{{{size},{ctrl}}}", family.name()))
                        .map(|c| occurrence_count(&c.build(), THETA))
                        .unwrap()
                };
                assert!(find('w') > find('i'), "{} {size}", family.name());
            }
        }
    }
}
