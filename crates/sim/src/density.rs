//! Partial density operators — the carrier of the paper's semantics.
//!
//! The denotational semantics of `q-while(T)` programs (Fig. 1b of the paper)
//! maps partial density operators to partial density operators: traces may
//! shrink below one (e.g. `abort` outputs the zero operator) because
//! probabilities of measurement branches are folded into the operator itself.

use crate::kernels::{left_mul, qubit_bit, right_mul_transposed};
use crate::state::StateVector;
use qdp_linalg::{C64, Matrix};

/// A partial density operator `ρ ∈ D(H)` on an `n`-qubit register,
/// i.e. a positive semidefinite operator with `tr(ρ) ≤ 1`.
///
/// Stored flat (row-major) so that the gate kernels of [`crate::kernels`]
/// apply directly: a `2ⁿ × 2ⁿ` operator is a state vector over `2n` qubits
/// whose first `n` qubits index rows.
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::DensityMatrix;
///
/// let mut rho = DensityMatrix::pure_zero(1);
/// rho.apply_unitary(&Matrix::hadamard(), &[0]);
/// assert!((rho.trace() - 1.0).abs() < 1e-12);
/// assert!((rho.purity() - 1.0).abs() < 1e-12); // still pure
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    /// Row-major `2ⁿ × 2ⁿ` entries.
    data: Vec<C64>,
}

impl DensityMatrix {
    /// The zero operator (output of `abort`, Fig. 1b).
    pub fn zero_operator(n_qubits: usize) -> Self {
        DensityMatrix {
            n_qubits,
            data: vec![C64::ZERO; 1 << (2 * n_qubits)],
        }
    }

    /// The pure state `|0…0⟩⟨0…0|`.
    pub fn pure_zero(n_qubits: usize) -> Self {
        let mut rho = DensityMatrix::zero_operator(n_qubits);
        rho.data[0] = C64::ONE;
        rho
    }

    /// The maximally mixed state `I / 2ⁿ`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        let mut rho = DensityMatrix::zero_operator(n_qubits);
        let p = C64::real(1.0 / dim as f64);
        for i in 0..dim {
            rho.data[i * dim + i] = p;
        }
        rho
    }

    /// Density operator `|ψ⟩⟨ψ|` of a pure (possibly sub-normalised) state.
    ///
    /// Rows whose amplitude is zero are skipped before the inner loop (the
    /// whole row stays zero), and each surviving row is filled with one flat
    /// slice write — no per-element index arithmetic or zero re-checks.
    pub fn from_pure(psi: &StateVector) -> Self {
        let n = psi.num_qubits();
        let dim = 1usize << n;
        let amps = psi.amplitudes();
        let mut data = vec![C64::ZERO; dim * dim];
        for (row, &ai) in data.chunks_exact_mut(dim).zip(&amps) {
            if ai == C64::ZERO {
                continue;
            }
            for (slot, aj) in row.iter_mut().zip(&amps) {
                *slot = ai * aj.conj();
            }
        }
        DensityMatrix { n_qubits: n, data }
    }

    /// Builds a density operator from an already-flattened row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics when the buffer length is not `4ⁿ`.
    pub fn from_flat(n_qubits: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), 1usize << (2 * n_qubits), "buffer must hold 2^n x 2^n entries");
        DensityMatrix { n_qubits, data }
    }

    /// Builds a density operator from an explicit matrix.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not `2ⁿ × 2ⁿ` for the given qubit count.
    pub fn from_matrix(n_qubits: usize, m: &Matrix) -> Self {
        let dim = 1usize << n_qubits;
        assert!(m.rows() == dim && m.cols() == dim, "matrix must be 2^n x 2^n");
        DensityMatrix {
            n_qubits,
            data: m.as_slice().to_vec(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2ⁿ`.
    pub fn dim(&self) -> usize {
        1 << self.n_qubits
    }

    /// Entry `ρ_{ij}`.
    pub fn get(&self, i: usize, j: usize) -> C64 {
        self.data[i * self.dim() + j]
    }

    /// Borrows the flattened entries.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Copies into a [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_data(self.dim(), self.dim(), self.data.clone())
    }

    /// Trace — the total probability carried by this partial state.
    pub fn trace(&self) -> f64 {
        let dim = self.dim();
        (0..dim).map(|i| self.data[i * dim + i].re).sum()
    }

    /// Purity `tr(ρ²) / tr(ρ)²` (1 for pure states); `0` for the zero
    /// operator.
    pub fn purity(&self) -> f64 {
        let t = self.trace();
        if t == 0.0 {
            return 0.0;
        }
        let dim = self.dim();
        let mut tr2 = 0.0;
        for i in 0..dim {
            for j in 0..dim {
                tr2 += (self.data[i * dim + j] * self.data[j * dim + i]).re;
            }
        }
        tr2 / (t * t)
    }

    /// Applies a unitary `U` on `targets`: `ρ ← UρU†` (Fig. 1a, Unitary).
    ///
    /// The right factor `(U†)ᵀ = Ū` is formed by one conjugation instead of
    /// an adjoint *and* a transpose inside the kernel.
    pub fn apply_unitary(&mut self, u: &Matrix, targets: &[usize]) {
        left_mul(&mut self.data, self.n_qubits, u, targets);
        right_mul_transposed(&mut self.data, self.n_qubits, &u.conj(), targets);
    }

    /// Applies one (not necessarily unitary) operator conjugation
    /// `ρ ← MρM†` — e.g. a single measurement operator `Em(ρ) = MmρMm†`.
    pub fn apply_conjugation(&mut self, m: &Matrix, targets: &[usize]) {
        left_mul(&mut self.data, self.n_qubits, m, targets);
        right_mul_transposed(&mut self.data, self.n_qubits, &m.conj(), targets);
    }

    /// Applies a Kraus channel `ρ ← Σk KkρKk†` on `targets`.
    ///
    /// For repeated application of the same channel prefer
    /// [`crate::KrausChannel::apply`], which caches the conjugated operators
    /// and parallelises across branches.
    pub fn apply_kraus(&mut self, kraus: &[Matrix], targets: &[usize]) {
        let mut acc = vec![C64::ZERO; self.data.len()];
        for k in kraus {
            let mut term = self.data.clone();
            left_mul(&mut term, self.n_qubits, k, targets);
            right_mul_transposed(&mut term, self.n_qubits, &k.conj(), targets);
            for (a, t) in acc.iter_mut().zip(&term) {
                *a += *t;
            }
        }
        self.data = acc;
    }

    /// The initialisation superoperator `E_{q→0}` of the paper
    /// (`q := |0⟩`, Fig. 1b): `ρ ← |0⟩q⟨0|ρ|0⟩q⟨0| + |0⟩q⟨1|ρ|1⟩q⟨0|`.
    pub fn initialize_qubit(&mut self, q: usize) {
        let k0 = Matrix::from_real_rows(&[&[1.0, 0.0], &[0.0, 0.0]]); // |0⟩⟨0|
        let k1 = Matrix::from_real_rows(&[&[0.0, 1.0], &[0.0, 0.0]]); // |0⟩⟨1|
        self.apply_kraus(&[k0, k1], &[q]);
    }

    /// Adds another partial density operator (summing measurement branches,
    /// Eq. 3.3).
    ///
    /// # Panics
    ///
    /// Panics when qubit counts differ.
    pub fn add_assign(&mut self, other: &DensityMatrix) {
        assert_eq!(self.n_qubits, other.n_qubits, "qubit-count mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Scales by a real factor (e.g. classical probability weight).
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a = a.scale(s);
        }
    }

    /// Tensor product `self ⊗ other` (other's qubits appended).
    pub fn tensor(&self, other: &DensityMatrix) -> DensityMatrix {
        let m = self.to_matrix().kron(&other.to_matrix());
        DensityMatrix::from_matrix(self.n_qubits + other.n_qubits, &m)
    }

    /// Prepends a fresh ancilla qubit in state `|0⟩⟨0|` as the new qubit 0 —
    /// the initial state `(|0⟩A⟨0|) ⊗ ρ` of Definition 5.2.
    pub fn prepend_zero_ancilla(&self) -> DensityMatrix {
        let old_dim = self.dim();
        let new_n = self.n_qubits + 1;
        let new_dim = 1usize << new_n;
        let mut out = DensityMatrix::zero_operator(new_n);
        for i in 0..old_dim {
            for j in 0..old_dim {
                out.data[i * new_dim + j] = self.data[i * old_dim + j];
            }
        }
        out
    }

    /// Partial trace over `traced` qubits; remaining qubits keep their
    /// relative order.
    ///
    /// # Panics
    ///
    /// Panics on duplicate or out-of-range qubits.
    pub fn partial_trace(&self, traced: &[usize]) -> DensityMatrix {
        let n = self.n_qubits;
        for (i, t) in traced.iter().enumerate() {
            assert!(*t < n, "traced qubit {t} out of range");
            assert!(!traced[i + 1..].contains(t), "duplicate traced qubit {t}");
        }
        let kept: Vec<usize> = (0..n).filter(|q| !traced.contains(q)).collect();
        let m = kept.len();
        let out_dim = 1usize << m;
        let dim = self.dim();
        let mut out = DensityMatrix::zero_operator(m);

        let kept_masks: Vec<usize> = kept.iter().map(|&q| 1usize << qubit_bit(n, q)).collect();
        let traced_masks: Vec<usize> =
            traced.iter().map(|&q| 1usize << qubit_bit(n, q)).collect();

        // Expand a reduced index into a full index with traced bits zero.
        let expand = |idx: usize, masks: &[usize], count: usize| -> usize {
            let mut full = 0usize;
            for (j, mask) in masks.iter().enumerate() {
                if idx & (1 << (count - 1 - j)) != 0 {
                    full |= mask;
                }
            }
            full
        };

        let t = traced.len();
        for a in 0..out_dim {
            let base_row = expand(a, &kept_masks, m);
            for b in 0..out_dim {
                let base_col = expand(b, &kept_masks, m);
                let mut acc = C64::ZERO;
                for e in 0..(1usize << t) {
                    let env = expand(e, &traced_masks, t);
                    acc += self.data[(base_row | env) * dim + (base_col | env)];
                }
                out.data[a * out_dim + b] = acc;
            }
        }
        out
    }

    /// Approximate equality within entry-wise tolerance `tol`.
    pub fn approx_eq(&self, other: &DensityMatrix, tol: f64) -> bool {
        self.n_qubits == other.n_qubits
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Validates the partial-density-operator invariants: Hermitian, positive
    /// semidefinite, `tr(ρ) ≤ 1` (all within tolerance `tol`).
    pub fn is_valid(&self, tol: f64) -> bool {
        let m = self.to_matrix();
        m.is_hermitian(tol) && self.trace() <= 1.0 + tol && m.is_psd(tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_zero_is_valid_pure_state() {
        let rho = DensityMatrix::pure_zero(2);
        assert!((rho.trace() - 1.0).abs() < 1e-15);
        assert!((rho.purity() - 1.0).abs() < 1e-15);
        assert!(rho.is_valid(1e-10));
    }

    #[test]
    fn unitary_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::pure_zero(2);
        rho.apply_unitary(&Matrix::hadamard(), &[0]);
        rho.apply_unitary(&Matrix::cnot(), &[0, 1]);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_pure_matches_outer_product() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let rho = DensityMatrix::from_pure(&psi);
        // |+⟩⟨+| has all entries 1/2.
        for i in 0..2 {
            for j in 0..2 {
                assert!(rho.get(i, j).approx_eq(C64::real(0.5), 1e-12));
            }
        }
    }

    #[test]
    fn initialize_qubit_resets_to_zero() {
        // Start from |1⟩⟨1| on a single qubit, initialise, expect |0⟩⟨0|.
        let mut rho = DensityMatrix::from_pure(&StateVector::basis_state(1, 1));
        rho.initialize_qubit(0);
        assert!(rho.approx_eq(&DensityMatrix::pure_zero(1), 1e-12));
    }

    #[test]
    fn initialize_qubit_breaks_entanglement_correctly() {
        // Bell state, then initialise qubit 0: result is |0⟩⟨0| ⊗ I/2.
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let mut rho = DensityMatrix::from_pure(&psi);
        rho.initialize_qubit(0);
        let expected = DensityMatrix::pure_zero(1).tensor(&DensityMatrix::maximally_mixed(1));
        assert!(rho.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn partial_trace_of_bell_state_is_maximally_mixed() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let rho = DensityMatrix::from_pure(&psi);
        for traced in [vec![0usize], vec![1usize]] {
            let reduced = rho.partial_trace(&traced);
            assert!(reduced.approx_eq(&DensityMatrix::maximally_mixed(1), 1e-12));
        }
    }

    #[test]
    fn partial_trace_of_product_state() {
        let a = DensityMatrix::from_pure(&StateVector::basis_state(1, 1));
        let b = DensityMatrix::pure_zero(1);
        let ab = a.tensor(&b);
        assert!(ab.partial_trace(&[1]).approx_eq(&a, 1e-12));
        assert!(ab.partial_trace(&[0]).approx_eq(&b, 1e-12));
    }

    #[test]
    fn prepend_zero_ancilla_matches_tensor() {
        let mut rho = DensityMatrix::pure_zero(2);
        rho.apply_unitary(&Matrix::hadamard(), &[1]);
        let expected = DensityMatrix::pure_zero(1).tensor(&rho);
        assert!(rho.prepend_zero_ancilla().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn zero_operator_has_zero_trace() {
        let z = DensityMatrix::zero_operator(2);
        assert_eq!(z.trace(), 0.0);
        assert_eq!(z.purity(), 0.0);
    }

    #[test]
    fn kraus_channel_preserves_trace_when_complete() {
        // Dephasing channel: {|0⟩⟨0|, |1⟩⟨1|} sums to a complete set.
        let k0 = Matrix::basis_projector(2, 0);
        let k1 = Matrix::basis_projector(2, 1);
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let mut rho = DensityMatrix::from_pure(&psi);
        rho.apply_kraus(&[k0, k1], &[0]);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        // Off-diagonals killed.
        assert!(rho.get(0, 1).abs() < 1e-12);
        assert!((rho.get(0, 0).re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_and_scale_combine_branches() {
        let mut a = DensityMatrix::pure_zero(1);
        a.scale(0.25);
        let mut b = DensityMatrix::from_pure(&StateVector::basis_state(1, 1));
        b.scale(0.75);
        a.add_assign(&b);
        assert!((a.trace() - 1.0).abs() < 1e-15);
        assert!(a.is_valid(1e-9));
        assert!(a.purity() < 1.0);
    }
}
