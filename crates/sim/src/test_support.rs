//! Shared helpers for this crate's unit tests.

use crate::state::StateVector;
use qdp_linalg::C64;

/// A deterministic pseudo-random state with pure-imaginary, negative, and
/// negative-zero components — the inputs that expose signed-zero drift
/// between masked-copy fast paths and the gate kernels. One definition,
/// used by the measurement and sampling suites alike.
pub(crate) fn awkward_state(n: usize, seed: u64) -> StateVector {
    let mut s = seed;
    let mut next = || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let amps: Vec<C64> = (0..1usize << n)
        .map(|i| {
            if i % 5 == 0 {
                C64::new(0.0, next())
            } else if i % 7 == 0 {
                C64::new(next(), -0.0)
            } else {
                C64::new(next(), next())
            }
        })
        .collect();
    StateVector::from_amplitudes(n, amps)
}
