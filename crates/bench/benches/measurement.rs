//! Timing of the block-level measurement engine (`measurement_sweep`):
//! one `P2` parameter's branching derivative multiset, exactly evaluated
//! over the 16-sample dataset — block measurement sweeps
//! (`ShotEngine::expectation_sweep`: one probability sweep and one
//! strided collapse pass per group per fork) vs the retained per-row
//! measurement path (`ResolvedProgram::expectation_pure`) — plus the same
//! multiset sampled at a 1024-shot budget, batched sweeps vs the serial
//! per-shot AST loop.

use criterion::{criterion_group, criterion_main, Criterion};
use qdp_ad::estimator::{estimate_derivative, estimate_derivative_batched};
use qdp_ad::GradientEngine;
use qdp_lang::ast::Params;
use qdp_sim::{BatchedStates, ShotEngine, ShotSampler, StateVector};
use qdp_vqc::circuits::p2;
use qdp_vqc::task;
use std::hint::black_box;
use std::time::Duration;

fn bench_measurement_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("measurement_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let engine = GradientEngine::new(&p2()).expect("P2 differentiable");
    let params = Params::from_pairs(
        p2().parameters()
            .into_iter()
            .enumerate()
            .map(|(i, name)| (name, 0.2 + 0.31 * i as f64)),
    );
    let obs = task::readout_observable();
    let names: Vec<String> = engine.parameters().map(|s| s.to_string()).collect();
    let diffs: Vec<_> = names
        .iter()
        .map(|name| engine.differentiated(name).expect("cached artifact"))
        .collect();
    let skeletons: Vec<_> = diffs.iter().map(|d| d.skeleton()).collect();
    let mut resolved = Vec::new();
    for skeleton in &skeletons {
        let lowered = skeleton.lowered();
        let slots = lowered.slot_values(&params);
        resolved.extend(lowered.programs().iter().map(|p| p.resolve(&slots)));
    }
    let engines: Vec<ShotEngine> = resolved
        .iter()
        .map(|p| ShotEngine::new(p.to_trajectory()))
        .collect();
    let ext_obs = obs.with_ancilla_z();
    let inputs: Vec<StateVector> = task::dataset().into_iter().map(|s| s.input_state()).collect();
    let ext_inputs: Vec<StateVector> = inputs
        .iter()
        .map(|psi| StateVector::zero_state(1).tensor(psi))
        .collect();
    let ext_batch = BatchedStates::from_states(&ext_inputs);

    group.bench_function("block exact sweeps (36 params x 16 rows)", |b| {
        b.iter(|| {
            let total: f64 = engines
                .iter()
                .map(|e| {
                    e.expectation_sweep(ext_batch.clone(), &ext_obs)
                        .into_iter()
                        .sum::<f64>()
                })
                .sum();
            black_box(total)
        })
    });
    group.bench_function("per-row measurement path (36 params x 16 rows)", |b| {
        b.iter(|| {
            let total: f64 = resolved
                .iter()
                .map(|p| {
                    ext_inputs
                        .iter()
                        .map(|psi| p.expectation_pure(psi, &ext_obs))
                        .sum::<f64>()
                })
                .sum();
            black_box(total)
        })
    });

    let shots = 1024usize;
    group.bench_function("block sampled estimate (1024 shots)", |b| {
        b.iter(|| {
            black_box(estimate_derivative_batched(
                diffs[0], &params, &obs, &inputs[0], shots, 9,
            ))
        })
    });
    group.bench_function("serial per-shot loop (1024 shots)", |b| {
        b.iter(|| {
            let mut sampler = ShotSampler::seeded(9);
            black_box(estimate_derivative(
                diffs[0],
                &params,
                &obs,
                &inputs[0],
                shots,
                &mut sampler,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_measurement_sweep);
criterion_main!(benches);
