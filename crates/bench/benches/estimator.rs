//! Timing of the Section 7 shot-noise execution paths: one derivative
//! estimate of a P1 parameter at a fixed shot budget, serial per-shot AST
//! loop vs the batched `ShotEngine` sweeps, plus the shot-based forward
//! value.

use criterion::{criterion_group, criterion_main, Criterion};
use qdp_ad::estimator::{estimate_derivative, estimate_derivative_batched};
use qdp_ad::GradientEngine;
use qdp_lang::ast::Params;
use qdp_sim::{ShotSampler, StateVector};
use qdp_vqc::circuits::p1;
use qdp_vqc::task;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Duration;

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_shots");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let program = p1();
    let engine = GradientEngine::new(&program).expect("P1 differentiable");
    let param_values: BTreeMap<String, f64> = program
        .parameters()
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, 0.2 + 0.31 * i as f64))
        .collect();
    let params = Params::from_pairs(param_values.iter().map(|(k, &v)| (k.clone(), v)));
    let obs = task::readout_observable();
    let psi = StateVector::from_bits(&[true, false, true, false]);
    let name = engine.parameters().next().expect("P1 has parameters").to_string();
    let diff = engine.differentiated(&name).expect("cached artifact");
    let shots = 4096usize;

    group.bench_function("serial per-shot loop (4096 shots, 1 param)", |b| {
        b.iter(|| {
            let mut sampler = ShotSampler::seeded(7);
            black_box(estimate_derivative(
                diff, &params, &obs, &psi, shots, &mut sampler,
            ))
        })
    });
    group.bench_function("batched ShotEngine (4096 shots, 1 param)", |b| {
        b.iter(|| {
            black_box(estimate_derivative_batched(
                diff, &params, &obs, &psi, shots, 7,
            ))
        })
    });
    group.bench_function("shot-based forward value (4096 shots)", |b| {
        b.iter(|| black_box(engine.value_pure_shots(&params, &obs, &psi, shots, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
