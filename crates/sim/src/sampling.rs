//! Shot-based sampling of measurements and observables.
//!
//! Section 7 of the paper analyses the *execution* of the differentiation
//! procedure: expectations `tr(Oρ)` are estimated by repeated projective
//! measurement, with `O(1/δ²)` repetitions for additive error `δ` (Chernoff
//! bound). This module provides that statistical layer over the exact
//! simulator.

use crate::measurement::Measurement;
use crate::observable::Observable;
use crate::state::StateVector;
use qdp_linalg::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded sampler producing measurement shots from simulated states.
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::{Observable, ShotSampler, StateVector};
///
/// let mut psi = StateVector::zero_state(1);
/// psi.apply_gate(&Matrix::hadamard(), &[0]);
/// let z = Observable::pauli_z(1, 0);
/// let mut sampler = ShotSampler::seeded(7);
/// let estimate = sampler.estimate_observable(&psi, &z, 4096);
/// assert!(estimate.abs() < 0.1); // true value is 0
/// ```
#[derive(Debug)]
pub struct ShotSampler {
    rng: StdRng,
}

impl ShotSampler {
    /// Creates a sampler with a fixed seed (reproducible runs).
    pub fn seeded(seed: u64) -> Self {
        ShotSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a sampler from operating-system entropy.
    pub fn from_entropy() -> Self {
        ShotSampler {
            rng: StdRng::from_entropy(),
        }
    }

    /// Draws a uniform index in `0..n`.
    pub fn uniform_index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Performs one shot of `measurement` on a normalised pure state;
    /// returns the sampled outcome and the collapsed, renormalised state.
    ///
    /// # Panics
    ///
    /// Panics if the state has (numerically) zero norm.
    pub fn measure(
        &mut self,
        psi: &StateVector,
        measurement: &Measurement,
    ) -> (usize, StateVector) {
        let total = psi.norm_sqr();
        assert!(total > 1e-300, "cannot measure a zero-norm state");
        let branches = measurement.branches_pure(psi);
        let mut r: f64 = self.rng.gen::<f64>() * total;
        for b in &branches {
            r -= b.probability;
            if r <= 0.0 {
                let mut state = b.state.clone();
                if b.probability > 0.0 {
                    state.scale(C64::real((total / b.probability).sqrt().min(1e150)));
                    // Renormalise to the parent state's norm.
                    let norm = state.norm_sqr().sqrt();
                    if norm > 0.0 {
                        state.scale(C64::real(total.sqrt() / norm));
                    }
                }
                return (b.outcome, state);
            }
        }
        // Floating-point slack: fall back to the last branch with support.
        let last = branches
            .into_iter()
            .rev()
            .find(|b| b.probability > 0.0)
            .expect("no branch has support");
        let mut state = last.state.clone();
        let norm = state.norm_sqr().sqrt();
        if norm > 0.0 {
            state.scale(C64::real(total.sqrt() / norm));
        }
        (last.outcome, state)
    }

    /// One shot of an observable: projectively measures in the observable's
    /// eigenbasis and returns the sampled eigenvalue.
    pub fn sample_observable(&mut self, psi: &StateVector, obs: &Observable) -> f64 {
        let total = psi.norm_sqr();
        if total <= 1e-300 {
            return 0.0;
        }
        let mut r: f64 = self.rng.gen::<f64>() * total;
        let projective = obs.to_projective();
        for (eigenvalue, projector) in &projective {
            let p = Observable::new(
                obs.num_qubits(),
                obs.targets().to_vec(),
                projector.clone(),
            )
            .expectation_pure(psi);
            r -= p;
            if r <= 0.0 {
                return *eigenvalue;
            }
        }
        projective.last().map(|(l, _)| *l).unwrap_or(0.0)
    }

    /// Monte-Carlo estimate of `⟨O⟩` from `shots` projective samples.
    pub fn estimate_observable(
        &mut self,
        psi: &StateVector,
        obs: &Observable,
        shots: usize,
    ) -> f64 {
        assert!(shots > 0, "need at least one shot");
        let mut acc = 0.0;
        for _ in 0..shots {
            acc += self.sample_observable(psi, obs);
        }
        acc / shots as f64
    }

    /// Number of repetitions the paper's Chernoff analysis prescribes for
    /// estimating a sum of `m` program read-outs to additive precision
    /// `delta` (Section 7: `O(m²/δ²)`).
    pub fn chernoff_shots(m: usize, delta: f64) -> usize {
        assert!(delta > 0.0, "precision must be positive");
        let m = m.max(1) as f64;
        ((m * m) / (delta * delta)).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_linalg::Matrix;

    #[test]
    fn measurement_statistics_approach_born_rule() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let m = Measurement::computational(vec![0]);
        let mut sampler = ShotSampler::seeded(42);
        let shots = 20_000;
        let mut ones = 0usize;
        for _ in 0..shots {
            let (outcome, _) = sampler.measure(&psi, &m);
            ones += outcome;
        }
        let freq = ones as f64 / shots as f64;
        assert!((freq - 0.5).abs() < 0.02, "frequency {freq} too far from 0.5");
    }

    #[test]
    fn collapsed_state_is_consistent() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        let mut sampler = ShotSampler::seeded(1);
        for _ in 0..20 {
            let (outcome, collapsed) = sampler.measure(&psi, &m);
            assert_eq!(collapsed.classical_bit(0), Some(outcome == 1));
            assert_eq!(collapsed.classical_bit(1), Some(outcome == 1));
            assert!((collapsed.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn observable_estimate_converges() {
        let psi = StateVector::zero_state(1); // ⟨Z⟩ = 1 exactly
        let z = Observable::pauli_z(1, 0);
        let mut sampler = ShotSampler::seeded(3);
        let est = sampler.estimate_observable(&psi, &z, 100);
        assert!((est - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observable_estimate_on_superposition() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(
            &Matrix::rotation_from_involution(&Matrix::pauli_y(), 1.0),
            &[0],
        );
        let z = Observable::pauli_z(1, 0);
        let exact = z.expectation_pure(&psi);
        let mut sampler = ShotSampler::seeded(1234);
        let est = sampler.estimate_observable(&psi, &z, 40_000);
        assert!((est - exact).abs() < 0.02, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn chernoff_shot_count_scales_quadratically() {
        assert_eq!(ShotSampler::chernoff_shots(1, 0.1), 100);
        assert_eq!(ShotSampler::chernoff_shots(2, 0.1), 400);
        assert_eq!(ShotSampler::chernoff_shots(4, 0.1), 1600);
    }

    #[test]
    fn seeded_samplers_are_reproducible() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let m = Measurement::computational(vec![0]);
        let run = |seed: u64| -> Vec<usize> {
            let mut s = ShotSampler::seeded(seed);
            (0..32).map(|_| s.measure(&psi, &m).0).collect()
        };
        assert_eq!(run(9), run(9));
    }
}
