//! Quantum measurements `{Mm}` and branch enumeration.
//!
//! Section 2.3 of the paper: performing `{Mm}` on `ρ` yields outcome `m` with
//! probability `pm = tr(MmρMm†)` and post-measurement state `MmρMm†/pm`. The
//! language semantics works with the *unnormalised* branches `Em(ρ) = MmρMm†`
//! so probabilities ride along inside the partial density operators.

use crate::density::DensityMatrix;
use crate::kernels::{apply_matrix, local_index, qubit_bit};
use crate::state::StateVector;
use qdp_linalg::{C64, Matrix};

/// A quantum measurement: operators `{Mm}` on a subset of qubits with
/// `Σm Mm†Mm = I`.
///
/// # Examples
///
/// ```
/// use qdp_sim::{DensityMatrix, Measurement};
///
/// let m = Measurement::computational(vec![0]);
/// let rho = DensityMatrix::pure_zero(1);
/// let branches = m.branches(&rho);
/// assert!((branches[0].trace() - 1.0).abs() < 1e-12); // outcome 0 certain
/// assert!(branches[1].trace() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct Measurement {
    operators: Vec<Matrix>,
    targets: Vec<usize>,
    /// Whether `operators` are exactly the computational-basis projectors
    /// `{|m⟩⟨m|}` in outcome order — the shape every `case`/`init`
    /// measurement in the language has, and the gate for the
    /// *selected-branch* fast paths ([`branch_probabilities_pure`],
    /// [`collapse_pure`]): probabilities from one bucketed `|amp|²` pass
    /// and a single materialised branch, instead of applying every
    /// operator.
    ///
    /// [`branch_probabilities_pure`]: Measurement::branch_probabilities_pure
    /// [`collapse_pure`]: Measurement::collapse_pure
    computational: bool,
}

/// One unnormalised branch of a pure-state measurement.
#[derive(Clone, Debug)]
pub struct MeasurementBranch {
    /// The measurement outcome index `m`.
    pub outcome: usize,
    /// The branch probability `pm` (relative to the incoming state's norm).
    pub probability: f64,
    /// The unnormalised post-measurement state `Mm|ψ⟩`.
    pub state: StateVector,
}

impl Measurement {
    /// Creates a measurement from explicit operators.
    ///
    /// # Panics
    ///
    /// Panics when dimensions are inconsistent or the completeness relation
    /// `Σ M†M = I` fails beyond `1e-8`.
    pub fn new(operators: Vec<Matrix>, targets: Vec<usize>) -> Self {
        assert!(!operators.is_empty(), "measurement needs at least one operator");
        let dim = 1usize << targets.len();
        let mut sum = Matrix::zeros(dim, dim);
        for m in &operators {
            assert!(
                m.rows() == dim && m.cols() == dim,
                "measurement operator must be {dim}x{dim}"
            );
            sum = &sum + &m.dagger().mul(m);
        }
        assert!(
            sum.approx_eq(&Matrix::identity(dim), 1e-8),
            "measurement operators must satisfy completeness Σ M†M = I"
        );
        let computational = operators.len() == dim
            && operators
                .iter()
                .enumerate()
                .all(|(m, op)| *op == Matrix::basis_projector(dim, m));
        Measurement {
            operators,
            targets,
            computational,
        }
    }

    /// The computational-basis measurement on `targets`: outcome `m` is the
    /// basis state `|m⟩` of the measured sub-register (target order gives
    /// bit significance, first target most significant).
    pub fn computational(targets: Vec<usize>) -> Self {
        let dim = 1usize << targets.len();
        let operators = (0..dim).map(|k| Matrix::basis_projector(dim, k)).collect();
        Measurement {
            operators,
            targets,
            computational: true,
        }
    }

    /// A two-outcome measurement `{M0, M1}` as used by `while` guards.
    ///
    /// # Panics
    ///
    /// Panics when completeness fails.
    pub fn two_outcome(m0: Matrix, m1: Matrix, targets: Vec<usize>) -> Self {
        Measurement::new(vec![m0, m1], targets)
    }

    /// Number of outcomes.
    pub fn num_outcomes(&self) -> usize {
        self.operators.len()
    }

    /// Borrows the measurement operators.
    pub fn operators(&self) -> &[Matrix] {
        &self.operators
    }

    /// Borrows the measured qubits.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// All unnormalised branches `Em(ρ) = MmρMm†` (the superoperators of the
    /// paper's operational semantics, Fig. 1a).
    pub fn branches(&self, rho: &DensityMatrix) -> Vec<DensityMatrix> {
        self.operators
            .iter()
            .map(|m| {
                let mut branch = rho.clone();
                branch.apply_conjugation(m, &self.targets);
                branch
            })
            .collect()
    }

    /// One branch `Em(ρ)`.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range.
    pub fn branch(&self, rho: &DensityMatrix, outcome: usize) -> DensityMatrix {
        let mut out = rho.clone();
        out.apply_conjugation(&self.operators[outcome], &self.targets);
        out
    }

    /// All branches of a pure state, with probabilities.
    ///
    /// This materialises **every** branch state; it is the reference oracle
    /// the selected-branch fast paths
    /// ([`branch_probabilities_pure`](Self::branch_probabilities_pure) +
    /// [`collapse_pure`](Self::collapse_pure)) are pinned against bitwise.
    pub fn branches_pure(&self, psi: &StateVector) -> Vec<MeasurementBranch> {
        self.operators
            .iter()
            .enumerate()
            .map(|(outcome, m)| {
                let state = psi.with_gate(m, &self.targets);
                MeasurementBranch {
                    outcome,
                    probability: state.norm_sqr(),
                    state,
                }
            })
            .collect()
    }

    /// Whether the fast single-pass paths apply: computational-basis
    /// operators on at most two targets (the only shapes the basis
    /// projectors route through the diagonal kernel, whose arithmetic the
    /// fast paths replicate bit for bit).
    fn fast_computational(&self) -> bool {
        self.computational && self.targets.len() <= 2
    }

    /// The local outcome masks of a fast-path (≤ 2 target) computational
    /// measurement against an `n`-qubit register, allocation-free: bit `j`
    /// of the full index contributes bit `k−1−j` of the outcome (first
    /// target most significant, matching
    /// [`Measurement::computational`]'s operator order). Returns the mask
    /// array and the target count `k`.
    fn outcome_masks(&self, n: usize) -> ([usize; 2], usize) {
        let k = self.targets.len();
        debug_assert!(k <= 2, "fast masks are only built on the fast path");
        let mut masks = [0usize; 2];
        for (j, &t) in self.targets.iter().enumerate() {
            masks[j] = 1usize << qubit_bit(n, t);
        }
        (masks, k)
    }

    /// The branch probabilities `pm = ‖Mm|ψ⟩‖²` of every outcome, without
    /// keeping the branch states.
    ///
    /// For computational measurements on ≤ 2 targets this is a **single
    /// bucketed `|amp|²` pass** over the state: each amplitude contributes
    /// to exactly one outcome bucket, in index order — the identical values
    /// in the identical addition order as `‖Mm|ψ⟩‖²` of the materialised
    /// branch (non-members contribute exact `+0.0` there), so the results
    /// equal [`branches_pure`](Self::branches_pure)'s probabilities **bit
    /// for bit**. Other measurements fall back to applying each operator.
    pub fn branch_probabilities_pure(&self, psi: &StateVector) -> Vec<f64> {
        self.branch_probabilities_amps(psi.num_qubits(), psi.amplitudes())
    }

    /// [`branch_probabilities_pure`](Self::branch_probabilities_pure) on a
    /// raw amplitude slice — what batched executors call on the rows of a
    /// `BatchedStates` block without copying them out first.
    ///
    /// # Panics
    ///
    /// Panics when `amps.len() != 2^n_qubits`.
    pub fn branch_probabilities_amps(&self, n_qubits: usize, amps: &[C64]) -> Vec<f64> {
        let mut probs = Vec::new();
        self.branch_probabilities_into(n_qubits, amps, &mut probs);
        probs
    }

    /// [`branch_probabilities_amps`](Self::branch_probabilities_amps)
    /// writing into a reusable buffer (cleared and refilled) — the
    /// allocation-free form the batched executors call once per row per
    /// measurement.
    ///
    /// # Panics
    ///
    /// Panics when `amps.len() != 2^n_qubits`.
    pub fn branch_probabilities_into(&self, n_qubits: usize, amps: &[C64], probs: &mut Vec<f64>) {
        assert_eq!(amps.len(), 1usize << n_qubits, "amplitude slice length mismatch");
        probs.clear();
        probs.resize(self.num_outcomes(), 0.0);
        if !self.fast_computational() {
            // One scratch buffer for all operators: each `Mm|ψ⟩` is the
            // identical arithmetic `with_gate` performs, without building a
            // `StateVector` per operator.
            let mut scratch: Vec<C64> = Vec::with_capacity(amps.len());
            for (m, op) in self.operators.iter().enumerate() {
                scratch.clear();
                scratch.extend_from_slice(amps);
                apply_matrix(&mut scratch, n_qubits, op, &self.targets);
                probs[m] = scratch.iter().map(|z| z.norm_sqr()).sum();
            }
            return;
        }
        let (masks, k) = self.outcome_masks(n_qubits);
        for (i, a) in amps.iter().enumerate() {
            probs[local_index(i, &masks[..k])] += a.norm_sqr();
        }
    }

    /// The branch probabilities of **every row** of a contiguous
    /// `rows × 2ⁿ` amplitude block, from **one bucketed `|amp|²` sweep**
    /// over the whole block: `table` is cleared and refilled with
    /// `rows × num_outcomes` entries, row `r`'s probabilities at
    /// `table[r·outcomes .. (r+1)·outcomes]`.
    ///
    /// Each row's buckets accumulate the identical values in the identical
    /// addition order as [`branch_probabilities_into`] on that row alone,
    /// so the table matches per-row calls **bit for bit** — the block form
    /// merely amortises the outcome-mask setup and the dispatch over the
    /// group. Non-computational measurements apply each operator per row
    /// through one shared scratch buffer.
    ///
    /// [`branch_probabilities_into`]: Measurement::branch_probabilities_into
    ///
    /// # Panics
    ///
    /// Panics when `block.len()` is not a multiple of `2^n_qubits`.
    pub fn branch_probabilities_block(&self, n_qubits: usize, block: &[C64], table: &mut Vec<f64>) {
        let dim = 1usize << n_qubits;
        assert_eq!(block.len() % dim, 0, "block must hold whole rows");
        let outcomes = self.num_outcomes();
        table.clear();
        table.resize((block.len() / dim) * outcomes, 0.0);
        if !self.fast_computational() {
            let mut scratch: Vec<C64> = Vec::with_capacity(dim);
            for (r, row) in block.chunks_exact(dim).enumerate() {
                for (m, op) in self.operators.iter().enumerate() {
                    scratch.clear();
                    scratch.extend_from_slice(row);
                    apply_matrix(&mut scratch, n_qubits, op, &self.targets);
                    table[r * outcomes + m] = scratch.iter().map(|z| z.norm_sqr()).sum();
                }
            }
            return;
        }
        // The fast path only ever sees one or two targets (see
        // `fast_computational`); dispatching on the count once per *block*
        // — not once per amplitude through the generic `local_index` —
        // keeps the masks in registers. Each row's buckets accumulate in
        // the identical order in both arms, so bits are unchanged.
        let (masks, k) = self.outcome_masks(n_qubits);
        if k == 1 {
            // Register-resident buckets: each one accumulates the identical
            // values in the identical order as indexing the table per
            // amplitude, so bits are unchanged.
            let m = masks[0];
            for (row, buckets) in block
                .chunks_exact(dim)
                .zip(table.chunks_exact_mut(outcomes))
            {
                let (mut p0, mut p1) = (0.0f64, 0.0f64);
                for (i, a) in row.iter().enumerate() {
                    if i & m != 0 {
                        p1 += a.norm_sqr();
                    } else {
                        p0 += a.norm_sqr();
                    }
                }
                buckets[0] = p0;
                buckets[1] = p1;
            }
        } else {
            let (m0, m1) = (masks[0], masks[1]);
            for (row, buckets) in block
                .chunks_exact(dim)
                .zip(table.chunks_exact_mut(outcomes))
            {
                let mut acc = [0.0f64; 4];
                for (i, a) in row.iter().enumerate() {
                    let local = (usize::from(i & m0 != 0) << 1) | usize::from(i & m1 != 0);
                    acc[local] += a.norm_sqr();
                }
                buckets.copy_from_slice(&acc);
            }
        }
    }

    /// One unnormalised branch `Mm|ψ⟩` of a pure state — the
    /// selected-branch half of the fast collapse: callers that already know
    /// the outcome (from [`branch_probabilities_pure`](Self::branch_probabilities_pure)
    /// and a draw, or from exact branch enumeration) materialise only this
    /// branch instead of all of them.
    ///
    /// For computational measurements on ≤ 2 targets the projector is
    /// applied as a masked copy replicating the diagonal kernel's
    /// arithmetic exactly (members untouched, non-members multiplied
    /// component-wise by `0.0`, preserving IEEE signed zeros) — the result
    /// equals `psi.with_gate(&operators[outcome], targets)` **bit for
    /// bit**; other measurements go through that very call.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range.
    pub fn collapse_pure(&self, psi: &StateVector, outcome: usize) -> StateVector {
        let n = psi.num_qubits();
        let mut amps = Vec::with_capacity(psi.dim());
        self.collapse_amps_into(n, psi.amplitudes(), outcome, &mut amps);
        StateVector::from_amplitudes(n, amps)
    }

    /// [`collapse_pure`](Self::collapse_pure) writing the collapsed
    /// amplitudes straight onto the end of `out` — how the branch-weighted
    /// batched executor fills an outcome sub-batch block without a
    /// per-row `StateVector` round trip.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range or `amps.len() != 2^n_qubits`.
    pub fn collapse_amps_into(
        &self,
        n_qubits: usize,
        amps: &[C64],
        outcome: usize,
        out: &mut Vec<C64>,
    ) {
        assert!(outcome < self.num_outcomes(), "outcome {outcome} out of range");
        assert_eq!(amps.len(), 1usize << n_qubits, "amplitude slice length mismatch");
        if !self.fast_computational() {
            // Copy once onto the destination and apply the operator in
            // place — the same arithmetic as `with_gate`, without the
            // intermediate `StateVector` round trip.
            let start = out.len();
            out.extend_from_slice(amps);
            apply_matrix(&mut out[start..], n_qubits, &self.operators[outcome], &self.targets);
            return;
        }
        let (masks, k) = self.outcome_masks(n_qubits);
        out.reserve(amps.len());
        for (i, a) in amps.iter().enumerate() {
            out.push(if local_index(i, &masks[..k]) == outcome {
                *a
            } else {
                // The diagonal kernel multiplies non-members by the real
                // scalar 0.0 component-wise; pushing `C64::ZERO` would
                // lose the signed zeros it produces.
                C64::new(a.re * 0.0, a.im * 0.0)
            });
        }
    }

    /// Materialises outcome `outcome`'s unnormalised branch of the
    /// **selected rows** of a contiguous `rows × 2ⁿ` amplitude block: one
    /// strided pass over the surviving source rows (in `rows` order),
    /// appending each collapsed row to `out` — how the block-level
    /// regrouping fills one outcome's entire sub-batch with a single call
    /// instead of one [`collapse_amps_into`](Self::collapse_amps_into) per
    /// row.
    ///
    /// Every row's collapse performs the identical masked copy as the
    /// per-row path (non-members multiplied component-wise by `0.0`,
    /// preserving the projector kernel's IEEE signed zeros), so the
    /// destination block equals per-row calls **bit for bit**.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range, `block` does not hold whole
    /// rows, or a selected row index is out of range.
    pub fn collapse_block_into(
        &self,
        n_qubits: usize,
        block: &[C64],
        rows: &[usize],
        outcome: usize,
        out: &mut Vec<C64>,
    ) {
        assert!(outcome < self.num_outcomes(), "outcome {outcome} out of range");
        let dim = 1usize << n_qubits;
        assert_eq!(block.len() % dim, 0, "block must hold whole rows");
        if !self.fast_computational() {
            for &r in rows {
                let start = out.len();
                out.extend_from_slice(&block[r * dim..(r + 1) * dim]);
                apply_matrix(&mut out[start..], n_qubits, &self.operators[outcome], &self.targets);
            }
            return;
        }
        // Same per-block target-count dispatch as the probability sweep;
        // the copy itself is identical amplitude for amplitude (`extend`
        // from an exact-size iterator skips the per-push length updates).
        let (masks, k) = self.outcome_masks(n_qubits);
        out.reserve(rows.len() * dim);
        if k == 1 {
            let m = masks[0];
            let member = if outcome == 1 { m } else { 0 };
            for &r in rows {
                out.extend(block[r * dim..(r + 1) * dim].iter().enumerate().map(
                    |(i, a)| {
                        if i & m == member {
                            *a
                        } else {
                            C64::new(a.re * 0.0, a.im * 0.0)
                        }
                    },
                ));
            }
        } else {
            let (m0, m1) = (masks[0], masks[1]);
            for &r in rows {
                out.extend(block[r * dim..(r + 1) * dim].iter().enumerate().map(
                    |(i, a)| {
                        let local = (usize::from(i & m0 != 0) << 1) | usize::from(i & m1 != 0);
                        if local == outcome {
                            *a
                        } else {
                            C64::new(a.re * 0.0, a.im * 0.0)
                        }
                    },
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computational_measurement_is_complete() {
        // Constructor would panic otherwise; exercise multi-qubit case.
        let m = Measurement::computational(vec![0, 2]);
        assert_eq!(m.num_outcomes(), 4);
    }

    #[test]
    fn branch_probabilities_sum_to_one() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        let branches = m.branches_pure(&psi);
        let total: f64 = branches.iter().map(|b| b.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((branches[0].probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measuring_bell_state_correlates_qubits() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        for b in m.branches_pure(&psi) {
            if b.probability > 0.0 {
                // After observing qubit 0 = m, qubit 1 must equal m too.
                let normalised = {
                    let mut s = b.state.clone();
                    s.scale(qdp_linalg::C64::real(1.0 / b.probability.sqrt()));
                    s
                };
                assert_eq!(normalised.classical_bit(1), Some(b.outcome == 1));
            }
        }
    }

    #[test]
    fn density_branches_match_pure_branches() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[1]);
        let rho = DensityMatrix::from_pure(&psi);
        let m = Measurement::computational(vec![1]);
        let dense = m.branches(&rho);
        let pure = m.branches_pure(&psi);
        for (d, p) in dense.iter().zip(&pure) {
            assert!((d.trace() - p.probability).abs() < 1e-12);
            assert!(d.approx_eq(&DensityMatrix::from_pure(&p.state), 1e-12));
        }
    }

    #[test]
    fn branches_preserve_total_trace() {
        let mut rho = DensityMatrix::pure_zero(3);
        rho.apply_unitary(&Matrix::hadamard(), &[0]);
        rho.apply_unitary(&Matrix::cnot(), &[0, 2]);
        let m = Measurement::computational(vec![0, 2]);
        let total: f64 = m.branches(&rho).iter().map(|b| b.trace()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn incomplete_operators_panic() {
        let _ = Measurement::new(vec![Matrix::basis_projector(2, 0)], vec![0]);
    }

    use crate::test_support::awkward_state;

    #[test]
    fn fast_probabilities_match_branches_pure_bitwise() {
        for (targets, seed) in [(vec![0usize], 3u64), (vec![2], 4), (vec![1, 3], 5), (vec![3, 0], 6)] {
            let m = Measurement::computational(targets.clone());
            let psi = awkward_state(4, seed);
            let fast = m.branch_probabilities_pure(&psi);
            let oracle = m.branches_pure(&psi);
            assert_eq!(fast.len(), oracle.len());
            for (p, b) in fast.iter().zip(&oracle) {
                assert_eq!(p.to_bits(), b.probability.to_bits(), "targets {targets:?}");
            }
        }
    }

    #[test]
    fn fast_collapse_matches_with_gate_bitwise() {
        for (targets, seed) in [(vec![0usize], 11u64), (vec![2], 12), (vec![0, 2], 13), (vec![3, 1], 14)] {
            let m = Measurement::computational(targets.clone());
            let psi = awkward_state(4, seed);
            for outcome in 0..m.num_outcomes() {
                let fast = m.collapse_pure(&psi, outcome);
                let oracle = psi.with_gate(&m.operators()[outcome], m.targets());
                // Bit equality including zero signs: the masked copy must
                // replicate the diagonal kernel exactly.
                let fast_bits: Vec<(u64, u64)> = fast
                    .amplitudes()
                    .iter()
                    .map(|a| (a.re.to_bits(), a.im.to_bits()))
                    .collect();
                let oracle_bits: Vec<(u64, u64)> = oracle
                    .amplitudes()
                    .iter()
                    .map(|a| (a.re.to_bits(), a.im.to_bits()))
                    .collect();
                assert_eq!(fast_bits, oracle_bits, "targets {targets:?} outcome {outcome}");
            }
        }
    }

    #[test]
    fn general_measurements_use_operator_application() {
        // A non-computational two-outcome measurement (X-basis): the fast
        // flag must be off and both paths still agree with branches_pure.
        let h = Matrix::hadamard();
        let p_plus = h.mul(&Matrix::basis_projector(2, 0)).mul(&h);
        let p_minus = h.mul(&Matrix::basis_projector(2, 1)).mul(&h);
        let m = Measurement::two_outcome(p_plus, p_minus, vec![0]);
        assert!(!m.computational);
        let psi = awkward_state(2, 21);
        let probs = m.branch_probabilities_pure(&psi);
        for (p, b) in probs.iter().zip(&m.branches_pure(&psi)) {
            assert_eq!(p.to_bits(), b.probability.to_bits());
        }
        for outcome in 0..2 {
            assert_eq!(
                m.collapse_pure(&psi, outcome).amplitudes(),
                m.branches_pure(&psi)[outcome].state.amplitudes()
            );
        }
    }

    #[test]
    fn explicit_basis_projectors_are_detected_as_computational() {
        let m = Measurement::new(
            vec![Matrix::basis_projector(2, 0), Matrix::basis_projector(2, 1)],
            vec![1],
        );
        assert!(m.computational);
    }

    /// Packs `count` awkward states into one contiguous block.
    fn awkward_block(n: usize, count: usize, seed0: u64) -> Vec<C64> {
        let mut block = Vec::new();
        for s in 0..count {
            block.extend_from_slice(awkward_state(n, seed0 + s as u64).amplitudes());
        }
        block
    }

    #[test]
    fn block_probabilities_match_per_row_calls_bitwise() {
        let h = Matrix::hadamard();
        let x_basis = Measurement::two_outcome(
            h.mul(&Matrix::basis_projector(2, 0)).mul(&h),
            h.mul(&Matrix::basis_projector(2, 1)).mul(&h),
            vec![1],
        );
        let measurements = [
            Measurement::computational(vec![0]),
            Measurement::computational(vec![3]),
            Measurement::computational(vec![2, 0]),
            x_basis,
        ];
        for (mi, m) in measurements.iter().enumerate() {
            for rows in [1usize, 2, 5, 16] {
                let block = awkward_block(4, rows, 100 * (mi as u64 + 1));
                let mut table = vec![-1.0]; // must be cleared, not appended
                m.branch_probabilities_block(4, &block, &mut table);
                assert_eq!(table.len(), rows * m.num_outcomes());
                let dim = 1usize << 4;
                let mut probs = Vec::new();
                for r in 0..rows {
                    m.branch_probabilities_into(4, &block[r * dim..(r + 1) * dim], &mut probs);
                    for (o, (a, b)) in table[r * m.num_outcomes()..(r + 1) * m.num_outcomes()]
                        .iter()
                        .zip(&probs)
                        .enumerate()
                    {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "measurement {mi} rows {rows} row {r} outcome {o}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_collapse_matches_per_row_calls_bitwise() {
        // Strided row selections included: the block pass must only touch
        // the selected rows, in selection order, with identical bits —
        // signed zeros of the masked copy included.
        let h = Matrix::hadamard();
        let x_basis = Measurement::two_outcome(
            h.mul(&Matrix::basis_projector(2, 0)).mul(&h),
            h.mul(&Matrix::basis_projector(2, 1)).mul(&h),
            vec![0],
        );
        let measurements = [
            Measurement::computational(vec![1]),
            Measurement::computational(vec![3, 1]),
            x_basis,
        ];
        let dim = 1usize << 4;
        for (mi, m) in measurements.iter().enumerate() {
            let block = awkward_block(4, 7, 500 * (mi as u64 + 1));
            for (si, selected) in [vec![0usize, 1, 2, 3, 4, 5, 6], vec![2], vec![6, 0, 3]]
                .iter()
                .enumerate()
            {
                for outcome in 0..m.num_outcomes() {
                    let mut blocked = Vec::new();
                    m.collapse_block_into(4, &block, selected, outcome, &mut blocked);
                    assert_eq!(blocked.len(), selected.len() * dim);
                    let mut per_row = Vec::new();
                    for &r in selected {
                        m.collapse_amps_into(4, &block[r * dim..(r + 1) * dim], outcome, &mut per_row);
                    }
                    let bits = |v: &[C64]| -> Vec<(u64, u64)> {
                        v.iter().map(|a| (a.re.to_bits(), a.im.to_bits())).collect()
                    };
                    assert_eq!(
                        bits(&blocked),
                        bits(&per_row),
                        "measurement {mi} selection {si} outcome {outcome}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_outcome_guard_measurement() {
        let m = Measurement::two_outcome(
            Matrix::basis_projector(2, 0),
            Matrix::basis_projector(2, 1),
            vec![1],
        );
        let rho = DensityMatrix::pure_zero(2);
        assert!((m.branch(&rho, 0).trace() - 1.0).abs() < 1e-12);
        assert!(m.branch(&rho, 1).trace() < 1e-12);
    }
}
