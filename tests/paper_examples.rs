//! Cross-crate integration tests reproducing the paper's worked examples
//! (Example 4.1 “Generic-Case”, Example 6.1 “Simple-Case”, Lemma D.1, and
//! the Section 1 `MUL`/`QMUL` discussion).

use qdpl::ad::{differentiate, occurrence_count};
use qdpl::lang::ast::{Gate, Params, Stmt};
use qdpl::lang::{compile, op_sem, parse_program, Register};
use qdpl::linalg::Matrix;
use qdpl::sim::{DensityMatrix, Observable};
use std::f64::consts::PI;

/// Example 4.1: the Generic-Case additive program compiles to exactly the
/// fill-and-break multiset the paper displays.
#[test]
fn example_4_1_generic_case_compilation() {
    let p = parse_program(
        "case M[q1] = 0 -> (q1 *= RX(a) + q1 *= RY(a)), 1 -> q1 *= RZ(a) end",
    )
    .expect("valid");
    let compiled = compile::compile(&p);
    assert_eq!(compiled.len(), 2);

    // First case program: arms (P1, P3).
    let Stmt::Case { arms, .. } = &compiled[0] else { panic!() };
    assert!(matches!(
        &arms[0],
        Stmt::Unitary { gate: Gate::Rot { axis: qdpl::linalg::Pauli::X, .. }, .. }
    ));
    assert!(matches!(
        &arms[1],
        Stmt::Unitary { gate: Gate::Rot { axis: qdpl::linalg::Pauli::Z, .. }, .. }
    ));

    // Second case program: arms (P2, abort) — padded by fill-and-break.
    let Stmt::Case { arms, .. } = &compiled[1] else { panic!() };
    assert!(matches!(
        &arms[0],
        Stmt::Unitary { gate: Gate::Rot { axis: qdpl::linalg::Pauli::Y, .. }, .. }
    ));
    assert!(arms[1].essentially_aborts());
}

/// Example 4.1's semantic claim: the trace multiset of the additive program
/// equals `{| [[P1]](E0ρ), [[P2]](E0ρ), [[P3]](E1ρ) |}`.
#[test]
fn example_4_1_trace_multiset() {
    let p = parse_program(
        "case M[q1] = 0 -> (q1 *= RX(a) + q1 *= RY(a)), 1 -> q1 *= RZ(a) end",
    )
    .expect("valid");
    let reg = Register::from_program(&p);
    let params = Params::from_pairs([("a", 0.8)]);
    let mut rho = DensityMatrix::pure_zero(1);
    rho.apply_unitary(&Matrix::hadamard(), &[0]);

    let traces = op_sem::trace_multiset(&p, &reg, &params, &rho);
    assert_eq!(traces.len(), 3);

    // Each expected branch, computed by hand.
    let e0 = {
        let mut b = rho.clone();
        b.apply_conjugation(&Matrix::basis_projector(2, 0), &[0]);
        b
    };
    let e1 = {
        let mut b = rho.clone();
        b.apply_conjugation(&Matrix::basis_projector(2, 1), &[0]);
        b
    };
    let apply_rot = |rho: &DensityMatrix, sigma: Matrix| {
        let mut out = rho.clone();
        out.apply_unitary(&Matrix::rotation_from_involution(&sigma, 0.8), &[0]);
        out
    };
    let expected = vec![
        apply_rot(&e0, Matrix::pauli_x()),
        apply_rot(&e0, Matrix::pauli_y()),
        apply_rot(&e1, Matrix::pauli_z()),
    ];
    assert!(op_sem::multisets_approx_eq(&traces, &expected, 1e-10));
}

/// Example 6.1: differentiating the Simple-Case program yields the paper's
/// two-program multiset with the `R′` gadgets in the right arms.
#[test]
fn example_6_1_simple_case_differentiation() {
    let p = parse_program(
        "case M[q1] = 0 -> q1 *= RX(th); q1 *= RY(th), 1 -> q1 *= RZ(th) end",
    )
    .expect("valid");
    let diff = differentiate(&p, "th").expect("differentiable");
    let programs = diff.compiled();
    assert_eq!(programs.len(), 2);

    // Gadget detector: the sequence H[A]; C_R…; H[A].
    let contains_crot_on = |s: &Stmt, axis: qdpl::linalg::Pauli| {
        let mut found = false;
        s.visit(&mut |n| {
            if let Stmt::Unitary { gate: Gate::CRot { axis: a, .. }, .. } = n {
                if *a == axis {
                    found = true;
                }
            }
        });
        found
    };
    use qdpl::linalg::Pauli;
    // The multiset contains (in either order):
    //  * one case with an R′ gadget in arm 0 and R'Z in arm 1,
    //  * one case with the other arm-0 gadget and abort in arm 1.
    let with_rz = programs
        .iter()
        .find(|p| contains_crot_on(p, Pauli::Z))
        .expect("one program carries R'Z in arm 1");
    let with_abort = programs
        .iter()
        .find(|p| !contains_crot_on(p, Pauli::Z))
        .expect("one program has the padded abort arm");
    // Between them, both the R'X and R'Y gadgets appear exactly once.
    let x_count = programs.iter().filter(|p| contains_crot_on(p, Pauli::X)).count();
    let y_count = programs.iter().filter(|p| contains_crot_on(p, Pauli::Y)).count();
    assert_eq!((x_count, y_count), (1, 1));
    let Stmt::Case { arms, .. } = with_abort else { panic!() };
    assert!(arms[1].essentially_aborts());
    let Stmt::Case { arms, .. } = with_rz else { panic!() };
    assert!(!arms[1].essentially_aborts());
}

/// Lemma D.1: `d/dθ Rσ(θ) = ½ Rσ(θ+π)` for all six generators.
#[test]
fn lemma_d_1_rotation_derivative() {
    let paulis = [Matrix::pauli_x(), Matrix::pauli_y(), Matrix::pauli_z()];
    let mut generators: Vec<Matrix> = paulis.to_vec();
    for p in &paulis {
        generators.push(p.kron(p));
    }
    for sigma in generators {
        for theta in [0.0, 0.3, 1.9] {
            let h = 1e-6;
            let fd = (&Matrix::rotation_from_involution(&sigma, theta + h)
                - &Matrix::rotation_from_involution(&sigma, theta - h))
                .scale(qdpl::linalg::C64::real(0.5 / h));
            let analytic = Matrix::rotation_from_involution(&sigma, theta + PI)
                .scale(qdpl::linalg::C64::real(0.5));
            assert!(fd.approx_eq(&analytic, 1e-7));
        }
    }
}

/// The Section 1 `QMUL` discussion: `∂(U1;U2)` needs two copies of the
/// initial state (no-cloning), visible as two compiled programs.
#[test]
fn qmul_needs_one_copy_per_occurrence() {
    let qmul = parse_program("q1 *= RX(th); q1 *= RY(th)").expect("valid");
    let diff = differentiate(&qmul, "th").expect("differentiable");
    assert_eq!(diff.compiled().len(), 2);
    assert_eq!(occurrence_count(&qmul, "th"), 2);
}

/// Lemma D.2 / Eqs. 6.6–6.7 — the two pivots of the Sequence rule's proof:
///
/// * `[[(O, ρ) → S0; ∂S1]] = [[(O, [[S0]]ρ) → ∂S1]]` (shift the state), and
/// * `[[(O, ρ) → ∂S0; S1]] = [[([[S1]]*(O), ρ) → ∂S0]]` (shift the
///   observable through the Schrödinger–Heisenberg dual).
#[test]
fn lemma_d_2_sequence_rule_pivots() {
    use qdpl::ad::semantics::observable_semantics_with_ancilla;
    use qdpl::lang::{denot, superop, Register};

    let s0 = parse_program("q1 *= RX(th); q1 *= H").expect("valid");
    let s1 = parse_program("q1 *= RY(th)").expect("valid");
    let both = Stmt::Seq(Box::new(s0.clone()), Box::new(s1.clone()));
    let reg = Register::from_program(&both);
    let params = Params::from_pairs([("th", 0.77)]);
    let obs = Observable::pauli_z(1, 0);
    let mut rho = DensityMatrix::pure_zero(1);
    rho.apply_unitary(&Matrix::hadamard(), &[0]);

    // Differentiate each factor (take one compiled program from each).
    let d0 = differentiate(&s0, "th").expect("differentiable");
    let d1 = differentiate(&s1, "th").expect("differentiable");

    // Pivot 1: S0; ∂S1 evaluated at ρ equals ∂S1 evaluated at [[S0]]ρ.
    let rho_after_s0 = denot::denote(&s0, &reg, &params, &rho);
    for p1 in d1.compiled() {
        let chained = Stmt::Seq(Box::new(s0.clone()), Box::new(p1.clone()));
        let lhs =
            observable_semantics_with_ancilla(&chained, d1.ext_register(), &params, &obs, &rho);
        let rhs = observable_semantics_with_ancilla(
            p1,
            d1.ext_register(),
            &params,
            &obs,
            &rho_after_s0,
        );
        assert!((lhs - rhs).abs() < 1e-10, "state pivot failed");
    }

    // Pivot 2: ∂S0; S1 at (O, ρ) equals ∂S0 at ([[S1]]*(O), ρ).
    let dual_obs_matrix = superop::dual_apply(&s1, &reg, &params, &obs.lifted_matrix());
    let dual_obs = Observable::new(1, vec![0], dual_obs_matrix);
    for p0 in d0.compiled() {
        let chained = Stmt::Seq(Box::new(p0.clone()), Box::new(s1.clone()));
        let lhs =
            observable_semantics_with_ancilla(&chained, d0.ext_register(), &params, &obs, &rho);
        let rhs =
            observable_semantics_with_ancilla(p0, d0.ext_register(), &params, &dual_obs, &rho);
        assert!((lhs - rhs).abs() < 1e-10, "observable pivot failed");
    }
}

/// Definition 6.1's gadget really computes the product-rule derivative:
/// the Rot-Couple soundness equation of Theorem 6.2 item (4), checked for a
/// two-qubit coupling against the analytic formula
/// `½ tr(O(UρU(θ+π)† + U(θ+π)ρU†))`.
#[test]
fn rot_couple_rule_analytic_identity() {
    let p = parse_program("q1, q2 *= RYY(th)").expect("valid");
    let diff = differentiate(&p, "th").expect("differentiable");
    let theta = 1.234;
    let params = Params::from_pairs([("th", theta)]);
    let obs = Observable::new(2, vec![0, 1], Matrix::pauli_z().kron(&Matrix::pauli_x()));
    let mut rho = DensityMatrix::pure_zero(2);
    rho.apply_unitary(&Matrix::hadamard(), &[0]);
    rho.apply_unitary(&Matrix::cnot(), &[0, 1]);

    let gadget = diff.derivative(&params, &obs, &rho);

    let sigma = Matrix::pauli_y().kron(&Matrix::pauli_y());
    let u = Matrix::rotation_from_involution(&sigma, theta);
    let u_pi = Matrix::rotation_from_involution(&sigma, theta + PI);
    let rho_m = rho.to_matrix();
    let mixed = &u.mul(&rho_m).mul(&u_pi.dagger()) + &u_pi.mul(&rho_m).mul(&u.dagger());
    let analytic = 0.5 * obs.lifted_matrix().trace_mul(&mixed).re;

    assert!(
        (gadget - analytic).abs() < 1e-10,
        "gadget {gadget} vs analytic {analytic}"
    );
}
