//! Emits `BENCH_sim.json` — the simulator's performance trajectory record.
//!
//! Measures the headline numbers of the simulator's performance work:
//!
//! 0. `gate_apply` — the **L2-resident batched seam workload**: one gate
//!    per kernel dispatch class — H (dense real), RX (dense complex),
//!    RZ (diagonal), CNOT (block-diagonal controlled) — applied to a
//!    16-row × 10-qubit `BatchedStates` (two 128 KiB planes,
//!    cache-resident), plus the block measurement kernels
//!    (`branch_probabilities_block` / `collapse_block_into`) on the same
//!    block. This is where the PR-7 split-plane layout shows up; the PR-6
//!    interleaved-layout record is compiled in as the *before* number
//!    (measured at commit 6b04277 with identical workload, iteration
//!    policy, and `-C target-cpu=x86-64-v3`, in the same session as the
//!    PR-7 record so machine conditions match).
//! 1. single-qubit gate application to a 10-qubit `DensityMatrix`
//!    (kernel-level, fast vs reference) — DRAM-bound (16 MiB of
//!    amplitudes), so layout changes barely move it; guarded against the
//!    PR-5 record instead,
//! 2. the end-to-end `gradient.rs` workload — a full 24-parameter gradient
//!    of the paper's `P1` circuit — fast kernels vs reference kernels, and
//! 3. `gradient_batch_16x` — the full-batch training gradient over the
//!    16-sample classification dataset, batched engine
//!    (`Trainer::loss_gradient` on `value_pure_batch`/`gradient_pure_batch`)
//!    vs the serial per-sample loop it replaced, and
//! 4. `estimator_shots` — the shot-noise P1 gradient (Section 7's
//!    execution model, 1024 trajectories per parameter), batched
//!    `ShotEngine` sweeps (`gradient_pure_shots`) vs the serial per-shot
//!    AST loop (`estimate_derivative`), and
//! 5. `gradient_branching_batch` — the full 36-parameter gradient of the
//!    *measurement-controlled* `P2` circuit over the 16-sample dataset:
//!    the branch-weighted batched executor
//!    (`GradientEngine::gradient_pure_batch` forking the whole block at
//!    each measurement) vs the per-row branch-enumeration baseline
//!    (`gradient_pure` per sample), and
//! 6. `measurement_sweep` — the block-level measurement engine on its
//!    measurement-heavy workload: one `P2` parameter's branching
//!    derivative multiset evaluated exactly over the 16-sample dataset
//!    (`ShotEngine::expectation_sweep`, one probability sweep and one
//!    collapse pass per group per fork) vs the retained per-row
//!    measurement path (`ResolvedProgram::expectation_pure`, one
//!    measurement pass per row per fork), plus the same multiset sampled
//!    at a 1024-shot budget (batched sweeps vs the serial per-shot loop),
//!    and
//! 7. `compile_cache` — the compile-once pipeline on the full 36-parameter
//!    `P2` gradient: cold per-call recompilation (fresh
//!    `LoweredSet::lower` of all 36 gadget multisets on top of the
//!    evaluation) vs the warm interned path, plus the `±π/2` shift rule on
//!    the **single** interned forward skeleton — whose compile count is
//!    pinned in-process to exactly one lowered program.
//! 8. `service_overload` — the `GradientService` under saturation: 32
//!    clients racing into a `max_pending = 8` tenant (the shed count is
//!    exact — the queue bound admits 8 and rejects 24 with a typed
//!    `Overloaded`, whatever the interleaving), plus a live phase of
//!    4 × 64 sequential requests at `min_batch = 1` recording a p50/p99
//!    request-latency proxy under concurrent serving.
//!
//! Run with `scripts/bench_sim.sh` or
//! `cargo run --release -p qdp-bench --bin bench_sim [output-path]`.

use qdp_ad::estimator::{estimate_derivative, estimate_derivative_batched};
use qdp_ad::{
    GradientEngine, GradientService, OverloadPolicy, RequestOptions, ServiceConfig,
};
use qdp_lang::ast::Params;
use qdp_linalg::{C64, Matrix, Pauli};
use qdp_sim::kernels::{apply_matrix, apply_matrix_reference, set_reference_kernels};
use qdp_sim::simd::{self, SimdTier};
use qdp_sim::{BatchedStates, DensityMatrix, Measurement, ShotSampler, StateVector};
use qdp_vqc::circuits::p1;
use qdp_vqc::loss::{Loss, SquaredLoss};
use qdp_vqc::task;
use qdp_vqc::train::Trainer;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Median-of-runs wall time in nanoseconds for `f`, self-calibrating the
/// iteration count so each sample takes ≥ ~20ms.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Calibrate.
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 20 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    // Sample.
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A random normalized `n`-qubit state (the micro-workload inputs — same
/// generator and seeds as the PR-6 baseline run).
fn random_state(n: usize, seed: u64) -> StateVector {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let amps: Vec<C64> = (0..1usize << n).map(|_| C64::new(next(), next())).collect();
    let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    StateVector::from_amplitudes(
        n,
        amps.into_iter().map(|a| C64::new(a.re / norm, a.im / norm)).collect(),
    )
}

/// PR-6 (interleaved AoS layout, commit 6b04277) record of the batched
/// 16×10q seam micro-workloads — the *before* numbers `gate_apply` and the
/// `measurement_sweep` block kernels compare against. Measured on the same
/// machine/flags with `bench_micro` at that commit.
const PR6_GATE_H_NS: f64 = 8482.6;
const PR6_GATE_RX_NS: f64 = 18864.5;
const PR6_GATE_RZ_NS: f64 = 13946.6;
const PR6_GATE_CNOT_NS: f64 = 14016.1;
const PR6_BLOCK_PROBS_NS: f64 = 12999.1;
const PR6_BLOCK_COLLAPSE_NS: f64 = 12912.6;

/// PR-6 record of the two macro workloads whose hot loops the split-plane
/// layout rewrote underneath (`batched_ns` in the committed BENCH_sim.json
/// at commit 6b04277, re-measured in the same session as the micro
/// baselines) — recorded alongside the new numbers for trend tracking.
const PR6_ESTIMATOR_SHOTS_BATCHED_NS: f64 = 14620161.0;
const PR6_BRANCHING_BATCHED_NS: f64 = 1268493.9;

/// PR-5 record of the DRAM-bound density-matrix gate apply (`fast_ns` of
/// `gate_apply_10q_density` in the committed BENCH_sim.json at PR 5) — the
/// regression floor for the legacy headline.
const PR5_GATE_APPLY_DENSITY_NS: f64 = 748660.7;

/// PR-7 (split-plane scalar kernels) record of the batched 16×10q seam
/// micro-workloads — the *before* numbers the PR-9 explicit SIMD tier
/// compares against. Taken from the committed BENCH_sim.json at commit
/// 151fc02, measured on the same machine/flags (an AVX-512 host) with the
/// identical workload and iteration policy.
const PR7_GATE_H_NS: f64 = 8046.4;
const PR7_GATE_RX_NS: f64 = 11214.7;
const PR7_GATE_RZ_NS: f64 = 8172.8;
const PR7_GATE_CNOT_NS: f64 = 9561.5;
const PR7_BLOCK_PROBS_NS: f64 = 5850.5;
const PR7_BLOCK_COLLAPSE_NS: f64 = 9681.4;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sim.json".to_string());

    // --- 0. gate_apply: the L2-resident batched seam workload. ------------
    let micro_n = 10usize;
    let micro_rows = 16usize;
    let micro_states: Vec<StateVector> =
        (0..micro_rows).map(|r| random_state(micro_n, r as u64 + 1)).collect();
    let mut micro_batch = BatchedStates::from_states(&micro_states);

    let h = Matrix::hadamard();
    let rx = Matrix::rotation_x(0.7);
    let rz = Matrix::rotation_z(0.7);
    let cnot = Matrix::cnot();
    let gate_h_ns = time_ns(|| micro_batch.apply_gate(&h, &[4]));
    let gate_rx_ns = time_ns(|| micro_batch.apply_gate(&rx, &[5]));
    let gate_rz_ns = time_ns(|| micro_batch.apply_gate(&rz, &[6]));
    let gate_cnot_ns = time_ns(|| micro_batch.apply_gate(&cnot, &[3, 7]));

    // PR-9 SIMD micro-workloads: the `mask = 1` deinterleave orbits the
    // explicit kernels target (row qubit 9 → stride-2 plane pairs) and a
    // dense-2q contiguous-run shape (row qubits 3,7 → run length 4), plus
    // the same workloads with the tier capped to the scalar fallback — an
    // in-process speedup oracle immune to cross-session machine drift.
    let rxx = Matrix::coupling_rotation(Pauli::X, 0.7);
    let gate_h_m1_ns = time_ns(|| micro_batch.apply_gate(&h, &[9]));
    let gate_rx_m1_ns = time_ns(|| micro_batch.apply_gate(&rx, &[9]));
    let gate_rz_m1_ns = time_ns(|| micro_batch.apply_gate(&rz, &[9]));
    let gate_cnot_m1_ns = time_ns(|| micro_batch.apply_gate(&cnot, &[3, 9]));
    let gate_rxx_ns = time_ns(|| micro_batch.apply_gate(&rxx, &[3, 7]));

    let simd_tier = simd::active_tier();
    simd::set_tier_cap(SimdTier::Scalar);
    let scalar_rx_ns = time_ns(|| micro_batch.apply_gate(&rx, &[5]));
    let scalar_rx_m1_ns = time_ns(|| micro_batch.apply_gate(&rx, &[9]));
    let scalar_cnot_m1_ns = time_ns(|| micro_batch.apply_gate(&cnot, &[3, 9]));
    let scalar_rxx_ns = time_ns(|| micro_batch.apply_gate(&rxx, &[3, 7]));
    simd::set_tier_cap(SimdTier::Avx512); // uncap: active = detected again
    let simd_rx_speedup = scalar_rx_ns / gate_rx_ns;
    let simd_mask1_speedup = scalar_rx_m1_ns / gate_rx_m1_ns;
    let simd_cnot_mask1_speedup = scalar_cnot_m1_ns / gate_cnot_m1_ns;
    let simd_rxx_speedup = scalar_rxx_ns / gate_rxx_ns;

    let micro_batch = BatchedStates::from_states(&micro_states);
    let micro_meas = Measurement::computational(vec![4]);
    let mut micro_table = Vec::new();
    let block_probs_ns = time_ns(|| {
        let (re, im) = micro_batch.planes();
        micro_meas.branch_probabilities_block(micro_n, re, im, &mut micro_table);
        std::hint::black_box(&micro_table);
    });
    let micro_selected: Vec<usize> = (0..micro_rows).collect();
    let (mut micro_out_re, mut micro_out_im) = (Vec::new(), Vec::new());
    let block_collapse_ns = time_ns(|| {
        micro_out_re.clear();
        micro_out_im.clear();
        let (re, im) = micro_batch.planes();
        micro_meas.collapse_block_into(
            micro_n,
            re,
            im,
            &micro_selected,
            0,
            &mut micro_out_re,
            &mut micro_out_im,
        );
        std::hint::black_box((&micro_out_re, &micro_out_im));
    });

    // --- 1. Kernel-level: H on one qubit of a 10-qubit density matrix. ----
    let n = 10usize;
    let mut rho = DensityMatrix::pure_zero(n);
    for q in 0..n {
        rho.apply_unitary(&Matrix::hadamard(), &[q]);
    }
    let amps: Vec<C64> = rho.as_slice().to_vec();
    let h = Matrix::hadamard();

    let mut buf = amps.clone();
    let gate_fast_ns = time_ns(|| apply_matrix(&mut buf, 2 * n, &h, &[4]));
    let mut buf = amps.clone();
    let gate_ref_ns = time_ns(|| apply_matrix_reference(&mut buf, 2 * n, &h, &[4]));

    // --- 2. End-to-end: full P1 gradient (the gradient.rs workload). ------
    let program = p1();
    let engine = GradientEngine::new(&program).expect("P1 differentiable");
    let param_values: BTreeMap<String, f64> = program
        .parameters()
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, 0.2 + 0.31 * i as f64))
        .collect();
    let params = Params::from_pairs(param_values.iter().map(|(k, &v)| (k.clone(), v)));
    let obs = task::readout_observable();
    let psi = StateVector::from_bits(&[true, false, true, false]);

    let grad_fast_ns = time_ns(|| {
        std::hint::black_box(engine.gradient_pure(&params, &obs, &psi));
    });
    set_reference_kernels(true);
    let grad_ref_ns = time_ns(|| {
        std::hint::black_box(engine.gradient_pure(&params, &obs, &psi));
    });
    set_reference_kernels(false);

    // --- 3. Batched vs serial full-batch training gradient (16 samples). -
    let data: Vec<(StateVector, f64)> = task::dataset()
        .into_iter()
        .map(|s| (s.input_state(), s.target()))
        .collect();
    let batch_size = data.len();
    let loss = SquaredLoss;
    let param_values: BTreeMap<String, f64> = program
        .parameters()
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, 0.2 + 0.31 * i as f64))
        .collect();

    // The serial per-sample loop `Trainer::loss_gradient` ran before the
    // batch engine existed: one interpreter forward + one per-sample
    // gradient per dataset row, chain rule accumulated in row order.
    let serial_loop = || -> BTreeMap<String, f64> {
        let mut grads: BTreeMap<String, f64> =
            param_values.keys().map(|k| (k.clone(), 0.0)).collect();
        for (psi, label) in &data {
            let pred = engine.value_pure(&params, &obs, psi);
            let outer = loss.grad(pred, *label);
            if outer == 0.0 {
                continue;
            }
            let inner = engine.gradient_pure(&params, &obs, psi);
            for (name, g) in inner {
                *grads.get_mut(&name).expect("known parameter") += outer * g;
            }
        }
        grads
    };

    let mut trainer =
        Trainer::new(&program, task::readout_observable(), data.clone()).expect("P1 trains");
    trainer.set_params(&param_values);

    // Same numbers, two engines — sanity-check before timing.
    let serial_grads = serial_loop();
    let batched_grads = trainer.loss_gradient(&loss);
    for (name, v) in &serial_grads {
        assert!(
            (v - batched_grads[name]).abs() < 1e-12,
            "batched gradient diverged on {name}: {v} vs {}",
            batched_grads[name]
        );
    }

    let batch_serial_ns = time_ns(|| {
        std::hint::black_box(serial_loop());
    });
    let batch_fast_ns = time_ns(|| {
        std::hint::black_box(trainer.loss_gradient(&loss));
    });

    // --- 4. Shot-noise estimator: batched engine vs serial per-shot loop. -
    // The P1 gradient workload under Section 7's execution model: every
    // parameter's derivative estimated from sampled trajectories. The
    // serial loop interprets the AST one shot at a time
    // (`estimate_derivative`); the batched engine spends the same budget
    // in `ShotEngine` sweeps (`gradient_pure_shots`).
    let est_shots = 1024usize;
    let est_psi = StateVector::from_bits(&[true, false, true, false]);
    let est_seed = 42u64;

    let serial_shot_loop = || -> BTreeMap<String, f64> {
        engine
            .parameters()
            .enumerate()
            .map(|(j, name)| {
                let diff = engine.differentiated(name).expect("known parameter");
                let mut sampler = ShotSampler::seeded(qdp_sim::derive_seed(est_seed, j as u64));
                (
                    name.to_string(),
                    estimate_derivative(diff, &params, &obs, &est_psi, est_shots, &mut sampler),
                )
            })
            .collect()
    };
    let batched_shot_gradient =
        || engine.gradient_pure_shots(&params, &obs, &est_psi, est_shots, est_seed);

    // Both estimators must sit near the exact gradient before timing
    // (m = 1 per P1 parameter ⇒ standard error 1/√1024 ≈ 0.03).
    let exact_grad = engine.gradient_pure(&params, &obs, &est_psi);
    for (grads, path) in [
        (serial_shot_loop(), "serial"),
        (batched_shot_gradient(), "batched"),
    ] {
        for (name, v) in &grads {
            assert!(
                (v - exact_grad[name]).abs() < 0.2,
                "{path} shot estimate diverged on {name}: {v} vs {}",
                exact_grad[name]
            );
        }
    }

    let shots_serial_ns = time_ns(|| {
        std::hint::black_box(serial_shot_loop());
    });
    let shots_batched_ns = time_ns(|| {
        std::hint::black_box(batched_shot_gradient());
    });

    // --- 5. Branch-weighted exact executor vs per-row branch enumeration. -
    // P2's `case` makes every derivative multiset a branching program: the
    // per-row baseline enumerates both measurement branches row by row,
    // while the batched engine measures the whole 16-row block at once and
    // forks it into weighted outcome sub-batches.
    let p2_program = qdp_vqc::circuits::p2();
    let p2_engine = GradientEngine::new(&p2_program).expect("P2 differentiable");
    let p2_values: BTreeMap<String, f64> = p2_program
        .parameters()
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, 0.2 + 0.31 * i as f64))
        .collect();
    let p2_params = Params::from_pairs(p2_values.iter().map(|(k, &v)| (k.clone(), v)));
    let p2_inputs: Vec<StateVector> = data.iter().map(|(psi, _)| psi.clone()).collect();
    let p2_batch = qdp_sim::BatchedStates::from_states(&p2_inputs);
    let branch_params = p2_values.len();

    let branching_per_row = || -> Vec<BTreeMap<String, f64>> {
        p2_inputs
            .iter()
            .map(|psi| p2_engine.gradient_pure(&p2_params, &obs, psi))
            .collect()
    };
    let branching_batched = || p2_engine.gradient_pure_batch(&p2_params, &obs, &p2_batch);

    // Same numbers, two executors — sanity-check before timing.
    for (row, serial) in branching_batched().iter().zip(branching_per_row()) {
        for (name, v) in &serial {
            assert!(
                (v - row[name]).abs() < 1e-12,
                "branch-weighted gradient diverged on {name}: {v} vs {}",
                row[name]
            );
        }
    }

    let branch_serial_ns = time_ns(|| {
        std::hint::black_box(branching_per_row());
    });
    let branch_batched_ns = time_ns(|| {
        std::hint::black_box(branching_batched());
    });

    // --- 6. Block-level measurement: group sweeps vs the per-row path. ----
    // The full branching P2 gradient's sweep work: every parameter's
    // derivative multiset — each compiled program branches at the
    // measurement the gadget controls — evaluated exactly over the
    // 16-sample dataset. The block path measures each group with one
    // probability sweep and one strided collapse pass per outcome; the
    // baseline is the retained per-row measurement path, the pinned
    // branch-enumeration oracle `ResolvedProgram::expectation_pure`.
    let p2_names: Vec<String> = p2_engine.parameters().map(|s| s.to_string()).collect();
    let p2_diffs: Vec<_> = p2_names
        .iter()
        .map(|name| p2_engine.differentiated(name).expect("cached artifact"))
        .collect();
    let p2_skeletons: Vec<_> = p2_diffs.iter().map(|d| d.skeleton()).collect();
    let mut resolved = Vec::new();
    for skeleton in &p2_skeletons {
        let lowered = skeleton.lowered();
        let slots = lowered.slot_values(&p2_params);
        resolved.extend(lowered.programs().iter().map(|p| p.resolve(&slots)));
    }
    let sweep_engines: Vec<qdp_sim::ShotEngine> = resolved
        .iter()
        .map(|p| qdp_sim::ShotEngine::new(p.to_trajectory()))
        .collect();
    let ext_obs = obs.with_ancilla_z();
    let ext_inputs: Vec<StateVector> = p2_inputs
        .iter()
        .map(|psi| StateVector::zero_state(1).tensor(psi))
        .collect();
    let ext_batch = qdp_sim::BatchedStates::from_states(&ext_inputs);

    let meas_block = || -> f64 {
        sweep_engines
            .iter()
            .map(|e| {
                e.expectation_sweep(ext_batch.clone(), &ext_obs)
                    .into_iter()
                    .sum::<f64>()
            })
            .sum()
    };
    let meas_per_row = || -> f64 {
        resolved
            .iter()
            .map(|p| {
                ext_inputs
                    .iter()
                    .map(|psi| p.expectation_pure(psi, &ext_obs))
                    .sum::<f64>()
            })
            .sum()
    };

    // Same numbers, two measurement paths — sanity-check before timing.
    assert!(
        (meas_block() - meas_per_row()).abs() < 1e-9,
        "block measurement sweep diverged: {} vs {}",
        meas_block(),
        meas_per_row()
    );

    let meas_per_row_ns = time_ns(|| {
        std::hint::black_box(meas_per_row());
    });
    let meas_block_ns = time_ns(|| {
        std::hint::black_box(meas_block());
    });

    // One multiset under the shot-noise model: 1024 trajectories, batched
    // block-measurement sweeps vs the serial per-shot AST loop.
    let meas_shots = 1024usize;
    let meas_psi = &p2_inputs[0];
    let meas_diff = p2_diffs[0];
    let sampled_block =
        || estimate_derivative_batched(meas_diff, &p2_params, &obs, meas_psi, meas_shots, 9);
    let sampled_serial = || {
        let mut sampler = ShotSampler::seeded(9);
        estimate_derivative(meas_diff, &p2_params, &obs, meas_psi, meas_shots, &mut sampler)
    };
    let meas_sampled_serial_ns = time_ns(|| {
        std::hint::black_box(sampled_serial());
    });
    let meas_sampled_block_ns = time_ns(|| {
        std::hint::black_box(sampled_block());
    });

    // --- 7. compile_cache: the 36-param P2 gradient, cold vs warm. --------
    // Cold = what every call paid in the per-entry-point world: freshly
    // lowering all 36 gadget multisets on top of the evaluation. Warm =
    // the interned path (`gradient_pure` on the process-wide cache). The
    // shift rule collapses the same gradient onto ONE lowered skeleton
    // evaluated at 72 shifted valuations — its compile count is pinned
    // here, in-process, as the acceptance check of the compile-once path.
    let compile_psi = &p2_inputs[0];
    let lower_36_ns = time_ns(|| {
        for diff in &p2_diffs {
            std::hint::black_box(qdp_ad::LoweredSet::lower(
                diff.compiled(),
                diff.ext_register(),
            ));
        }
    });

    // P2 forward program's process-wide first touch happens right here, on
    // this thread, so the thread-local lowering counter delta is exact.
    let lowers_before_shift = qdp_ad::lower_invocations();
    let shift_grad = p2_engine.gradient_pure_shift(&p2_params, &obs, compile_psi);
    let shift_lowered_programs = qdp_ad::lower_invocations() - lowers_before_shift;
    assert_eq!(
        shift_lowered_programs, 1,
        "the 36-param shift gradient must lower exactly one program skeleton"
    );
    let gadget_grad = p2_engine.gradient_pure(&p2_params, &obs, compile_psi);
    for (name, v) in &shift_grad {
        assert!(
            (v - gadget_grad[name]).abs() < 1e-8,
            "shift-rule gradient diverged on {name}: {v} vs {}",
            gadget_grad[name]
        );
    }

    let grad_warm_ns = time_ns(|| {
        std::hint::black_box(p2_engine.gradient_pure(&p2_params, &obs, compile_psi));
    });
    let grad_shift_ns = time_ns(|| {
        std::hint::black_box(p2_engine.gradient_pure_shift(&p2_params, &obs, compile_psi));
    });
    let grad_cold_ns = grad_warm_ns + lower_36_ns;
    let warm_speedup = grad_cold_ns / grad_warm_ns;
    let shift_speedup = grad_warm_ns / grad_shift_ns;

    // --- 8. service_overload: deterministic shedding + live latency. ------
    // Phase 1 (queue fill): 32 clients race into a tenant whose admission
    // threshold nothing reaches and whose queue holds 8 — whatever the
    // arrival order, exactly 8 enqueue and 24 shed with a typed
    // `Overloaded`, so the shed rate is a deterministic record, not a
    // sample. A flush then serves the 8 survivors in one sweep. Phase 2
    // (live): 4 clients each stream 64 requests through a min_batch=1
    // service, giving a p50/p99 request-latency proxy under concurrent
    // serving.
    let overload_clients = 32usize;
    let overload_bound = 8usize;
    let fill_service = Arc::new(GradientService::with_config(ServiceConfig {
        min_batch: overload_clients * 2,
        max_pending: Some(overload_bound),
        overload: OverloadPolicy::RejectNewest,
    }));
    let fill_handle = fill_service.register(&program).expect("P1 registers");
    let fill_workers: Vec<_> = (0..overload_clients)
        .map(|i| {
            let (service, handle) = (Arc::clone(&fill_service), fill_handle.clone());
            let (params, obs) = (params.clone(), obs.clone());
            let psi = StateVector::from_bits(&[i % 2 == 0, false, true, false]);
            std::thread::spawn(move || {
                service
                    .expectation_with(&handle, &params, &obs, &psi, &RequestOptions::new())
                    .is_ok()
            })
        })
        .collect();
    // Every submit resolves immediately into "queued" or "shed"; flush only
    // once all 32 are accounted for, so no straggler enqueues after the
    // gate opens and hangs below the threshold.
    while fill_service.shed(&fill_handle) + fill_service.pending_depth(&fill_handle)
        < overload_clients
    {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    fill_service.flush(&fill_handle);
    let fill_ok = fill_workers
        .into_iter()
        .map(|w| w.join().expect("fill client"))
        .filter(|&ok| ok)
        .count();
    let overload_shed = fill_service.shed(&fill_handle);
    let overload_served = fill_service.served(&fill_handle);
    let overload_shed_rate = overload_shed as f64 / overload_clients as f64;

    let live_threads = 4usize;
    let live_per_thread = 64usize;
    let live_service = Arc::new(GradientService::new());
    let live_handle = live_service.register(&program).expect("P1 registers");
    let live_workers: Vec<_> = (0..live_threads)
        .map(|t| {
            let (service, handle) = (Arc::clone(&live_service), live_handle.clone());
            let (params, obs) = (params.clone(), obs.clone());
            let psi = StateVector::from_bits(&[t % 2 == 0, t % 2 == 1, true, false]);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(live_per_thread);
                for _ in 0..live_per_thread {
                    let t0 = Instant::now();
                    let v = service
                        .expectation_with(&handle, &params, &obs, &psi, &RequestOptions::new())
                        .expect("live request serves");
                    std::hint::black_box(v);
                    lat.push(t0.elapsed().as_nanos() as f64);
                }
                lat
            })
        })
        .collect();
    let mut live_lat: Vec<f64> = live_workers
        .into_iter()
        .flat_map(|w| w.join().expect("live client"))
        .collect();
    live_lat.sort_by(f64::total_cmp);
    let live_total = live_lat.len();
    let live_p50_ns = live_lat[live_total / 2];
    let live_p99_ns = live_lat[(live_total * 99) / 100];

    let gate_speedup = gate_ref_ns / gate_fast_ns;
    let grad_speedup = grad_ref_ns / grad_fast_ns;
    let batch_speedup = batch_serial_ns / batch_fast_ns;
    let shots_speedup = shots_serial_ns / shots_batched_ns;
    let branch_speedup = branch_serial_ns / branch_batched_ns;
    let meas_speedup = meas_per_row_ns / meas_block_ns;
    let meas_sampled_speedup = meas_sampled_serial_ns / meas_sampled_block_ns;

    // The PR-7 headline: combined time over the four dispatch classes (and
    // the two block measurement kernels) vs the PR-6 interleaved-layout
    // record on the identical workload. Per-gate befores are emitted too so
    // the JSON shows where the layout pays (complex/diagonal orbits) and
    // where the store ports cap it (H).
    let gate_total_ns = gate_h_ns + gate_rx_ns + gate_rz_ns + gate_cnot_ns;
    let pr6_gate_total_ns = PR6_GATE_H_NS + PR6_GATE_RX_NS + PR6_GATE_RZ_NS + PR6_GATE_CNOT_NS;
    let gate_apply_speedup = pr6_gate_total_ns / gate_total_ns;
    let pr7_gate_total_ns = PR7_GATE_H_NS + PR7_GATE_RX_NS + PR7_GATE_RZ_NS + PR7_GATE_CNOT_NS;
    let gate_apply_speedup_vs_pr7 = pr7_gate_total_ns / gate_total_ns;
    let meas_micro_total_ns = block_probs_ns + block_collapse_ns;
    let pr6_meas_micro_total_ns = PR6_BLOCK_PROBS_NS + PR6_BLOCK_COLLAPSE_NS;
    let meas_micro_speedup = pr6_meas_micro_total_ns / meas_micro_total_ns;
    let pr7_meas_micro_total_ns = PR7_BLOCK_PROBS_NS + PR7_BLOCK_COLLAPSE_NS;
    let meas_micro_speedup_vs_pr7 = pr7_meas_micro_total_ns / meas_micro_total_ns;

    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"threads\": {},\n  \"gate_apply\": {{\n    \"workload\": \"16x10q batched seam, L2-resident, one gate per dispatch class (H dense-real, RX dense-complex, RZ diagonal, CNOT block-diagonal)\",\n    \"gate_h_ns\": {gate_h_ns:.1},\n    \"gate_rx_ns\": {gate_rx_ns:.1},\n    \"gate_rz_ns\": {gate_rz_ns:.1},\n    \"gate_cnot_ns\": {gate_cnot_ns:.1},\n    \"simd_tier\": \"{simd_tier:?}\",\n    \"gate_h_mask1_ns\": {gate_h_m1_ns:.1},\n    \"gate_rx_mask1_ns\": {gate_rx_m1_ns:.1},\n    \"gate_rz_mask1_ns\": {gate_rz_m1_ns:.1},\n    \"gate_cnot_mask1_ns\": {gate_cnot_m1_ns:.1},\n    \"gate_rxx_ns\": {gate_rxx_ns:.1},\n    \"scalar_gate_rx_ns\": {scalar_rx_ns:.1},\n    \"scalar_gate_rx_mask1_ns\": {scalar_rx_m1_ns:.1},\n    \"scalar_gate_cnot_mask1_ns\": {scalar_cnot_m1_ns:.1},\n    \"scalar_gate_rxx_ns\": {scalar_rxx_ns:.1},\n    \"simd_rx_speedup\": {simd_rx_speedup:.2},\n    \"simd_mask1_speedup\": {simd_mask1_speedup:.2},\n    \"simd_cnot_mask1_speedup\": {simd_cnot_mask1_speedup:.2},\n    \"simd_rxx_speedup\": {simd_rxx_speedup:.2},\n    \"total_ns\": {gate_total_ns:.1},\n    \"pr6_gate_h_ns\": {PR6_GATE_H_NS:.1},\n    \"pr6_gate_rx_ns\": {PR6_GATE_RX_NS:.1},\n    \"pr6_gate_rz_ns\": {PR6_GATE_RZ_NS:.1},\n    \"pr6_gate_cnot_ns\": {PR6_GATE_CNOT_NS:.1},\n    \"pr6_total_ns\": {pr6_gate_total_ns:.1},\n    \"speedup_vs_pr6\": {gate_apply_speedup:.2},\n    \"pr7_gate_h_ns\": {PR7_GATE_H_NS:.1},\n    \"pr7_gate_rx_ns\": {PR7_GATE_RX_NS:.1},\n    \"pr7_gate_rz_ns\": {PR7_GATE_RZ_NS:.1},\n    \"pr7_gate_cnot_ns\": {PR7_GATE_CNOT_NS:.1},\n    \"pr7_total_ns\": {pr7_gate_total_ns:.1},\n    \"speedup_vs_pr7\": {gate_apply_speedup_vs_pr7:.2}\n  }},\n  \"gate_apply_10q_density\": {{\n    \"gate\": \"H on row qubit 4\",\n    \"fast_ns\": {gate_fast_ns:.1},\n    \"reference_ns\": {gate_ref_ns:.1},\n    \"speedup\": {gate_speedup:.2}\n  }},\n  \"gradient_p1_24_params\": {{\n    \"workload\": \"GradientEngine::gradient_pure on P1\",\n    \"fast_ns\": {grad_fast_ns:.1},\n    \"reference_ns\": {grad_ref_ns:.1},\n    \"speedup\": {grad_speedup:.2}\n  }},\n  \"gradient_batch_16x\": {{\n    \"workload\": \"Trainer::loss_gradient on P1, {batch_size}-sample batch\",\n    \"batched_ns\": {batch_fast_ns:.1},\n    \"serial_loop_ns\": {batch_serial_ns:.1},\n    \"speedup\": {batch_speedup:.2}\n  }},\n  \"estimator_shots\": {{\n    \"workload\": \"shot-noise P1 gradient, {est_shots} shots x 24 params\",\n    \"batched_ns\": {shots_batched_ns:.1},\n    \"pr6_batched_ns\": {PR6_ESTIMATOR_SHOTS_BATCHED_NS:.1},\n    \"serial_loop_ns\": {shots_serial_ns:.1},\n    \"speedup\": {shots_speedup:.2}\n  }},\n  \"gradient_branching_batch\": {{\n    \"workload\": \"branch-weighted P2 gradient, {batch_size}-sample batch x {branch_params} params\",\n    \"batched_ns\": {branch_batched_ns:.1},\n    \"pr6_batched_ns\": {PR6_BRANCHING_BATCHED_NS:.1},\n    \"per_row_ns\": {branch_serial_ns:.1},\n    \"speedup\": {branch_speedup:.2}\n  }},\n  \"measurement_sweep\": {{\n    \"workload\": \"P2 branching gradient multisets ({branch_params} params, {batch_size}-row exact sweeps) + {meas_shots}-shot estimate, block vs per-row measurement\",\n    \"exact_block_ns\": {meas_block_ns:.1},\n    \"exact_per_row_ns\": {meas_per_row_ns:.1},\n    \"sampled_block_ns\": {meas_sampled_block_ns:.1},\n    \"sampled_serial_ns\": {meas_sampled_serial_ns:.1},\n    \"sampled_speedup\": {meas_sampled_speedup:.2},\n    \"speedup\": {meas_speedup:.2},\n    \"block_probs_ns\": {block_probs_ns:.1},\n    \"block_collapse_ns\": {block_collapse_ns:.1},\n    \"micro_total_ns\": {meas_micro_total_ns:.1},\n    \"pr6_block_probs_ns\": {PR6_BLOCK_PROBS_NS:.1},\n    \"pr6_block_collapse_ns\": {PR6_BLOCK_COLLAPSE_NS:.1},\n    \"pr6_micro_total_ns\": {pr6_meas_micro_total_ns:.1},\n    \"micro_speedup_vs_pr6\": {meas_micro_speedup:.2},\n    \"pr7_block_probs_ns\": {PR7_BLOCK_PROBS_NS:.1},\n    \"pr7_block_collapse_ns\": {PR7_BLOCK_COLLAPSE_NS:.1},\n    \"pr7_micro_total_ns\": {pr7_meas_micro_total_ns:.1},\n    \"micro_speedup_vs_pr7\": {meas_micro_speedup_vs_pr7:.2}\n  }},\n  \"compile_cache\": {{\n    \"workload\": \"36-param P2 gradient, 1 input; fresh 36-multiset lowering vs interned warm path vs single-skeleton shift rule\",\n    \"lower_36_multisets_ns\": {lower_36_ns:.1},\n    \"gradient_cold_ns\": {grad_cold_ns:.1},\n    \"gradient_warm_ns\": {grad_warm_ns:.1},\n    \"warm_speedup_vs_cold\": {warm_speedup:.2},\n    \"gradient_shift_ns\": {grad_shift_ns:.1},\n    \"shift_lowered_programs\": {shift_lowered_programs},\n    \"shift_speedup_vs_warm\": {shift_speedup:.2}\n  }},\n  \"service_overload\": {{\n    \"workload\": \"{overload_clients} clients vs a max_pending={overload_bound} tenant (typed shedding), then {live_threads}x{live_per_thread} live requests at min_batch=1 (latency proxy)\",\n    \"queue_fill_clients\": {overload_clients},\n    \"max_pending\": {overload_bound},\n    \"shed\": {overload_shed},\n    \"served\": {overload_served},\n    \"shed_rate\": {overload_shed_rate:.3},\n    \"live_requests\": {live_total},\n    \"live_p50_ns\": {live_p50_ns:.1},\n    \"live_p99_ns\": {live_p99_ns:.1}\n  }}\n}}\n",
        qdp_par::max_threads(),
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    print!("{json}");
    eprintln!("wrote {out_path}");

    // Guard against catastrophic regressions only: shared CI runners are
    // noisy and the medians come from five samples, so leave headroom
    // before failing the job.
    assert!(
        gate_speedup >= 0.8 && grad_speedup >= 0.8,
        "fast paths regressed well below the reference implementation \
         (gate {gate_speedup:.2}x, gradient {grad_speedup:.2}x)"
    );
    assert!(
        batch_speedup >= 1.0,
        "the batched gradient engine must not be slower than the serial \
         per-sample loop (got {batch_speedup:.2}x)"
    );
    assert!(
        shots_speedup >= 1.5,
        "the batched shot-noise estimator must clearly beat the serial \
         per-shot loop (got {shots_speedup:.2}x; the recorded target is 3x)"
    );
    assert!(
        branch_speedup >= 1.5,
        "the branch-weighted executor must clearly beat per-row branch \
         enumeration (got {branch_speedup:.2}x; the recorded target is 2x)"
    );
    assert!(
        meas_speedup >= 1.5,
        "the block measurement sweep must clearly beat the per-row \
         measurement path (got {meas_speedup:.2}x; the recorded target is 2x)"
    );
    assert!(
        gate_apply_speedup >= 1.2,
        "the split-plane gate seam regressed against the PR-6 interleaved \
         record (got {gate_apply_speedup:.2}x; the recorded target is 1.5x)"
    );
    assert!(
        meas_micro_speedup >= 1.4,
        "the split-plane block measurement kernels regressed against the \
         PR-6 interleaved record (got {meas_micro_speedup:.2}x; the \
         recorded target is 1.5x)"
    );
    assert!(
        gate_fast_ns <= PR5_GATE_APPLY_DENSITY_NS * 1.5,
        "the DRAM-bound density gate apply regressed well past the PR-5 \
         record ({gate_fast_ns:.1}ns vs the {PR5_GATE_APPLY_DENSITY_NS:.1}ns \
         floor)"
    );
    assert!(
        warm_speedup >= 1.05,
        "the interned warm gradient must clearly beat cold per-call \
         recompilation (got {warm_speedup:.2}x)"
    );
    // Overload shedding is exact, not statistical: the queue bound admits
    // exactly `overload_bound` of the racing clients and sheds the rest
    // with a typed error, whatever the arrival interleaving.
    assert_eq!(
        overload_shed + overload_served,
        overload_clients,
        "every queue-fill client must resolve as served or shed"
    );
    assert_eq!(
        overload_shed,
        overload_clients - overload_bound,
        "the shed count must equal the overflow past the queue bound exactly"
    );
    assert_eq!(
        fill_ok, overload_bound,
        "exactly the enqueued clients must be served after the flush"
    );
    assert!(
        live_p99_ns >= live_p50_ns && live_p50_ns > 0.0,
        "the live-phase latency proxy must be well-formed \
         (p50 {live_p50_ns:.1}ns, p99 {live_p99_ns:.1}ns)"
    );

    // PR-9 SIMD guards. The in-process scalar-vs-SIMD ratios are the
    // primary oracle — same machine, same run, immune to cross-session
    // drift; the PR-7 constants pin the cross-PR trend and only apply when
    // the wide tier is live (the PR-7 record came from an AVX-512 host).
    if simd_tier != SimdTier::Scalar {
        assert!(
            simd_mask1_speedup >= 1.5,
            "the mask=1 deinterleave kernel must clearly beat the scalar \
             fallback (got {simd_mask1_speedup:.2}x; the recorded target is 3x)"
        );
        let rx_floor = if simd_tier == SimdTier::Avx512 { 1.3 } else { 1.0 };
        assert!(
            simd_rx_speedup >= rx_floor,
            "the dense-complex contiguous-run kernel regressed against the \
             scalar fallback (got {simd_rx_speedup:.2}x, floor {rx_floor}x)"
        );
        assert!(
            simd_cnot_mask1_speedup >= 1.0 && simd_rxx_speedup >= 1.0,
            "a SIMD dispatch class fell behind its scalar fallback \
             (cnot mask1 {simd_cnot_mask1_speedup:.2}x, rxx {simd_rxx_speedup:.2}x)"
        );
    }
    if simd_tier == SimdTier::Avx512 {
        assert!(
            PR7_GATE_RX_NS / gate_rx_ns >= 1.3,
            "the RX dense-complex seam gate regressed against the PR-7 \
             scalar record ({gate_rx_ns:.1}ns vs {PR7_GATE_RX_NS:.1}ns; \
             the floor is 1.3x)"
        );
    }
}
