//! Abstract syntax of parameterized quantum bounded `while`-programs
//! (Section 3.1 of the paper) and their *additive* extension (Section 4.1).
//!
//! The grammar reproduced here:
//!
//! ```text
//! P(θ) ::= abort[q̄] | skip[q̄] | q := |0⟩ | q̄ := U(θ)[q̄]
//!        | P1(θ); P2(θ)
//!        | case M[q̄] = m → Pm(θ) end
//!        | while(T) M[q] = 1 do P1(θ) done
//!        | P1(θ) + P2(θ)          (additive programs only)
//! ```
//!
//! A program without `+` is *normal* (`q-while(T)`); with `+` it is
//! *additive* (`add-q-while(T)`). [`Stmt::is_normal`] distinguishes the two.

use qdp_linalg::{Matrix, Pauli};
use std::collections::{BTreeMap, BTreeSet};
use std::f64::consts::PI;
use std::fmt;

/// A quantum variable (a named qubit).
///
/// The paper's quantum registers `q̄` are finite sets of distinct variables;
/// here they appear as `Vec<Var>` operands with distinctness enforced by
/// well-formedness checking.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(String);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Var(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var(s.to_string())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A classical parameter valuation `θ* ∈ Rᵏ`, keyed by parameter name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Params(BTreeMap<String, f64>);

impl Params {
    /// Creates an empty valuation.
    pub fn new() -> Self {
        Params(BTreeMap::new())
    }

    /// Builds a valuation from `(name, value)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        Params(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Sets a parameter value, returning the previous value if any.
    pub fn set(&mut self, name: impl Into<String>, value: f64) -> Option<f64> {
        self.0.insert(name.into(), value)
    }

    /// Looks up a parameter value.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.0.get(name).copied()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.0.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// An affine angle expression `θj + c` or a constant `c`.
///
/// The code-transformation gadgets of the paper shift rotation angles by `π`
/// (Definition 6.1), so angles carry an additive offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Angle {
    /// The parameter name, or `None` for a constant angle.
    pub param: Option<String>,
    /// The additive constant.
    pub offset: f64,
}

impl Angle {
    /// The angle `θ(name)` with zero offset.
    pub fn param(name: impl Into<String>) -> Self {
        Angle {
            param: Some(name.into()),
            offset: 0.0,
        }
    }

    /// A constant angle.
    pub fn constant(value: f64) -> Self {
        Angle {
            param: None,
            offset: value,
        }
    }

    /// This angle shifted by `delta` (e.g. the `θ + π` of `C_Rσ`).
    pub fn shifted(&self, delta: f64) -> Self {
        Angle {
            param: self.param.clone(),
            offset: self.offset + delta,
        }
    }

    /// Returns `true` when the angle depends on parameter `name` — the
    /// negation of the paper's “trivially uses θj”.
    pub fn uses_param(&self, name: &str) -> bool {
        self.param.as_deref() == Some(name)
    }

    /// Evaluates under a valuation.
    ///
    /// # Panics
    ///
    /// Panics when the referenced parameter is absent from `params`;
    /// validate with [`Stmt::parameters`] first.
    pub fn eval(&self, params: &Params) -> f64 {
        match &self.param {
            None => self.offset,
            Some(name) => {
                let base = params
                    .get(name)
                    .unwrap_or_else(|| panic!("parameter '{name}' has no value"));
                base + self.offset
            }
        }
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.param {
            None => write_angle_const(f, self.offset),
            Some(p) => {
                write!(f, "{p}")?;
                if self.offset != 0.0 {
                    if self.offset > 0.0 {
                        write!(f, " + ")?;
                        write_angle_const(f, self.offset)
                    } else {
                        write!(f, " - ")?;
                        write_angle_const(f, -self.offset)
                    }
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Formats common multiples of π symbolically so pretty-printed programs
/// round-trip exactly through the parser.
fn write_angle_const(f: &mut fmt::Formatter<'_>, c: f64) -> fmt::Result {
    if c == PI {
        write!(f, "pi")
    } else if c == PI / 2.0 {
        write!(f, "pi/2")
    } else if c == PI / 4.0 {
        write!(f, "pi/4")
    } else {
        write!(f, "{c}")
    }
}

/// A (possibly parameterized) unitary gate.
///
/// The paper works with the universal set of single-qubit Pauli rotations
/// `Rσ(θ)` and two-qubit couplings `Rσ⊗σ(θ)` (Eq. 3.2), plus the controlled
/// variants `C_Rσ(θ)` introduced by differentiation (Definition 6.1) and a
/// handful of fixed Clifford gates used by the VQC benchmarks.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Single-qubit Pauli rotation `Rσ(θ)`.
    Rot {
        /// Rotation axis σ ∈ {X, Y, Z}.
        axis: Pauli,
        /// Rotation angle.
        angle: Angle,
    },
    /// Two-qubit coupling `Rσ⊗σ(θ)`.
    Coupling {
        /// Coupling axis σ ∈ {X, Y, Z}.
        axis: Pauli,
        /// Rotation angle.
        angle: Angle,
    },
    /// Iterated controlled rotation: with `k = controls` control qubits
    /// (the first `k` operands) in pattern `c`, the target gets
    /// `Rσ(θ + |c|·π)` where `|c|` is the pattern's Hamming weight.
    ///
    /// `controls = 1` is the paper's `C_Rσ(θ) = |0⟩⟨0|⊗Rσ(θ) +
    /// |1⟩⟨1|⊗Rσ(θ+π)` (Definition 6.1). Higher control counts arise from
    /// *iterating* differentiation: `d/dθ C_Rσ(θ) = ½·C_Rσ(θ+π)` holds
    /// block-wise, so the same gadget construction applies to `C_Rσ`
    /// itself, yielding `CC_Rσ`, and so on — this is what makes
    /// higher-order derivatives expressible (the paper's footnote 7).
    CRot {
        /// Number of control qubits (`≥ 1`).
        controls: usize,
        /// Rotation axis of the controlled blocks.
        axis: Pauli,
        /// Base angle θ; the pattern-`c` block uses `θ + |c|·π`.
        angle: Angle,
    },
    /// Iterated controlled two-qubit coupling `C…C_Rσ⊗σ(θ)`; the first
    /// `controls` operands are controls, the last two the coupled pair.
    CCoupling {
        /// Number of control qubits (`≥ 1`).
        controls: usize,
        /// Coupling axis of the controlled blocks.
        axis: Pauli,
        /// Base angle θ; the pattern-`c` block uses `θ + |c|·π`.
        angle: Angle,
    },
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Controlled-NOT (first operand is the control).
    Cnot,
}

impl Gate {
    /// Number of qubit operands.
    pub fn arity(&self) -> usize {
        match self {
            Gate::Rot { .. } | Gate::H | Gate::X | Gate::Y | Gate::Z => 1,
            Gate::Coupling { .. } | Gate::Cnot => 2,
            Gate::CRot { controls, .. } => controls + 1,
            Gate::CCoupling { controls, .. } => controls + 2,
        }
    }

    /// The angle expression, if this gate is parameterized.
    pub fn angle(&self) -> Option<&Angle> {
        match self {
            Gate::Rot { angle, .. }
            | Gate::Coupling { angle, .. }
            | Gate::CRot { angle, .. }
            | Gate::CCoupling { angle, .. } => Some(angle),
            _ => None,
        }
    }

    /// Returns `true` when the gate's angle depends on parameter `name`.
    pub fn uses_param(&self, name: &str) -> bool {
        self.angle().is_some_and(|a| a.uses_param(name))
    }

    /// The unitary matrix under a parameter valuation.
    ///
    /// # Panics
    ///
    /// Panics when a referenced parameter is absent from `params`.
    pub fn matrix(&self, params: &Params) -> Matrix {
        self.matrix_at(self.angle().map_or(0.0, |a| a.eval(params)))
    }

    /// The unitary matrix with the angle already evaluated to `theta`
    /// (ignored by fixed gates): `g.matrix(params) ≡
    /// g.matrix_at(g.angle().map_or(0.0, |a| a.eval(params)))`.
    ///
    /// This is the entry point of lowered executors that resolve parameter
    /// values once per run instead of once per gate.
    pub fn matrix_at(&self, theta: f64) -> Matrix {
        match self {
            // Closed-form constructors: one allocation per gate instead of
            // building and scaling the Pauli generator.
            Gate::Rot { axis, .. } => match axis {
                Pauli::X => Matrix::rotation_x(theta),
                Pauli::Y => Matrix::rotation_y(theta),
                Pauli::Z => Matrix::rotation_z(theta),
                Pauli::I => Matrix::rotation_from_involution(&axis.matrix(), theta),
            },
            Gate::Coupling { axis, .. } => match axis {
                Pauli::I => {
                    let sigma2 = axis.matrix().kron(&axis.matrix());
                    Matrix::rotation_from_involution(&sigma2, theta)
                }
                _ => Matrix::coupling_rotation(*axis, theta),
            },
            Gate::CRot { controls, axis, .. } => {
                iterated_controlled_rotation(&axis.matrix(), theta, *controls)
            }
            Gate::CCoupling { controls, axis, .. } => {
                let sigma2 = axis.matrix().kron(&axis.matrix());
                iterated_controlled_rotation(&sigma2, theta, *controls)
            }
            Gate::H => Matrix::hadamard(),
            Gate::X => Matrix::pauli_x(),
            Gate::Y => Matrix::pauli_y(),
            Gate::Z => Matrix::pauli_z(),
            Gate::Cnot => Matrix::cnot(),
        }
    }

    /// The display mnemonic of this gate (`RX`, `CRXX`, `CCRY`, `H`, …) —
    /// one leading `C` per control qubit.
    pub fn mnemonic(&self) -> String {
        match self {
            Gate::Rot { axis, .. } => format!("R{axis}"),
            Gate::Coupling { axis, .. } => format!("R{axis}{axis}"),
            Gate::CRot { controls, axis, .. } => {
                format!("{}R{axis}", "C".repeat(*controls))
            }
            Gate::CCoupling { controls, axis, .. } => {
                format!("{}R{axis}{axis}", "C".repeat(*controls))
            }
            Gate::H => "H".into(),
            Gate::X => "X".into(),
            Gate::Y => "Y".into(),
            Gate::Z => "Z".into(),
            Gate::Cnot => "CNOT".into(),
        }
    }
}

/// Builds the iterated controlled rotation: block `c` (a control pattern)
/// carries `Rσ(θ + popcount(c)·π)`. With one control this is Definition
/// 6.1's `C_Rσ(θ) = |0⟩⟨0| ⊗ Rσ(θ) + |1⟩⟨1| ⊗ Rσ(θ+π)`.
fn iterated_controlled_rotation(sigma: &Matrix, theta: f64, controls: usize) -> Matrix {
    assert!(controls >= 1, "controlled rotations need at least one control");
    let block_dim = sigma.rows();
    let patterns = 1usize << controls;
    let dim = patterns * block_dim;
    let mut out = Matrix::zeros(dim, dim);
    for c in 0..patterns {
        let shift = (c.count_ones() as f64) * PI;
        let block = Matrix::rotation_from_involution(sigma, theta + shift);
        for i in 0..block_dim {
            for j in 0..block_dim {
                out.set(c * block_dim + i, c * block_dim + j, block.get(i, j));
            }
        }
    }
    out
}

/// A statement of the (additive) parameterized quantum `while`-language.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `abort[q̄]` — terminate with the zero state.
    Abort {
        /// The register the statement is typed over.
        qs: Vec<Var>,
    },
    /// `skip[q̄]` — do nothing.
    Skip {
        /// The register the statement is typed over.
        qs: Vec<Var>,
    },
    /// `q := |0⟩` — initialise a qubit.
    Init {
        /// The qubit being initialised.
        q: Var,
    },
    /// `q̄ := U(θ)[q̄]` — apply a (parameterized) unitary.
    Unitary {
        /// The gate to apply.
        gate: Gate,
        /// Operand qubits (order matters for multi-qubit gates).
        qs: Vec<Var>,
    },
    /// `P1(θ); P2(θ)` — sequential composition.
    Seq(Box<Stmt>, Box<Stmt>),
    /// `case M[q̄] = m → Pm(θ) end` — computational-basis measurement of
    /// `q̄` with one arm per outcome (arm `m` handles outcome `m`).
    Case {
        /// Measured qubits (first is the most significant outcome bit).
        qs: Vec<Var>,
        /// One arm per outcome; `arms.len() == 2^qs.len()`.
        arms: Vec<Stmt>,
    },
    /// `while(T) M[q] = 1 do P done` — bounded loop guarded by a
    /// computational measurement of a single qubit.
    While {
        /// The guard qubit.
        q: Var,
        /// The iteration bound `T ≥ 1`.
        bound: u32,
        /// The loop body.
        body: Box<Stmt>,
    },
    /// `P1(θ) + P2(θ)` — additive (nondeterministic) choice.
    Sum(Box<Stmt>, Box<Stmt>),
}

impl Stmt {
    /// `abort` over a register.
    pub fn abort<I: IntoIterator<Item = Var>>(qs: I) -> Stmt {
        Stmt::Abort {
            qs: qs.into_iter().collect(),
        }
    }

    /// `skip` over a register.
    pub fn skip<I: IntoIterator<Item = Var>>(qs: I) -> Stmt {
        Stmt::Skip {
            qs: qs.into_iter().collect(),
        }
    }

    /// `q := |0⟩`.
    pub fn init(q: impl Into<Var>) -> Stmt {
        Stmt::Init { q: q.into() }
    }

    /// A unitary application.
    pub fn unitary<I, V>(gate: Gate, qs: I) -> Stmt
    where
        I: IntoIterator<Item = V>,
        V: Into<Var>,
    {
        Stmt::Unitary {
            gate,
            qs: qs.into_iter().map(Into::into).collect(),
        }
    }

    /// Single-qubit rotation `Rσ(θname)[q]`.
    pub fn rot(axis: Pauli, param: impl Into<String>, q: impl Into<Var>) -> Stmt {
        Stmt::unitary(
            Gate::Rot {
                axis,
                angle: Angle::param(param),
            },
            [q.into()],
        )
    }

    /// Two-qubit coupling `Rσ⊗σ(θname)[q1, q2]`.
    pub fn coupling(
        axis: Pauli,
        param: impl Into<String>,
        q1: impl Into<Var>,
        q2: impl Into<Var>,
    ) -> Stmt {
        Stmt::unitary(
            Gate::Coupling {
                axis,
                angle: Angle::param(param),
            },
            [q1.into(), q2.into()],
        )
    }

    /// Right-associated sequence of statements.
    ///
    /// # Panics
    ///
    /// Panics on an empty iterator.
    pub fn seq<I: IntoIterator<Item = Stmt>>(stmts: I) -> Stmt {
        let mut v: Vec<Stmt> = stmts.into_iter().collect();
        assert!(!v.is_empty(), "sequence needs at least one statement");
        let mut acc = v.pop().expect("non-empty");
        while let Some(s) = v.pop() {
            acc = Stmt::Seq(Box::new(s), Box::new(acc));
        }
        acc
    }

    /// Additive choice between many alternatives (left-associated, matching
    /// the paper's convention).
    ///
    /// # Panics
    ///
    /// Panics on an empty iterator.
    pub fn sum<I: IntoIterator<Item = Stmt>>(stmts: I) -> Stmt {
        let mut it = stmts.into_iter();
        let first = it.next().expect("sum needs at least one statement");
        it.fold(first, |acc, s| Stmt::Sum(Box::new(acc), Box::new(s)))
    }

    /// `case M[q] = 0 → s0, 1 → s1 end` on a single qubit.
    pub fn case_qubit(q: impl Into<Var>, s0: Stmt, s1: Stmt) -> Stmt {
        Stmt::Case {
            qs: vec![q.into()],
            arms: vec![s0, s1],
        }
    }

    /// `while(T) M[q] = 1 do body done`.
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0` — the language only has `T ≥ 1` loops.
    pub fn while_bounded(q: impl Into<Var>, bound: u32, body: Stmt) -> Stmt {
        assert!(bound >= 1, "while bound must be at least 1");
        Stmt::While {
            q: q.into(),
            bound,
            body: Box::new(body),
        }
    }

    /// The set of quantum variables accessible to the program —
    /// `qVar(P(θ))` of Appendix B.1.
    pub fn qvar(&self) -> BTreeSet<Var> {
        let mut set = BTreeSet::new();
        self.collect_qvar(&mut set);
        set
    }

    fn collect_qvar(&self, set: &mut BTreeSet<Var>) {
        match self {
            Stmt::Abort { qs } | Stmt::Skip { qs } => set.extend(qs.iter().cloned()),
            Stmt::Init { q } => {
                set.insert(q.clone());
            }
            Stmt::Unitary { qs, .. } => set.extend(qs.iter().cloned()),
            Stmt::Seq(a, b) | Stmt::Sum(a, b) => {
                a.collect_qvar(set);
                b.collect_qvar(set);
            }
            Stmt::Case { qs, arms } => {
                set.extend(qs.iter().cloned());
                for arm in arms {
                    arm.collect_qvar(set);
                }
            }
            Stmt::While { q, body, .. } => {
                set.insert(q.clone());
                body.collect_qvar(set);
            }
        }
    }

    /// Names of all parameters the program's gates reference.
    pub fn parameters(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.visit(&mut |s| {
            if let Stmt::Unitary { gate, .. } = s {
                if let Some(Angle { param: Some(p), .. }) = gate.angle() {
                    set.insert(p.clone());
                }
            }
        });
        set
    }

    /// Returns `true` when the program contains no additive choice, i.e.
    /// belongs to `q-while(T)` rather than `add-q-while(T)`.
    pub fn is_normal(&self) -> bool {
        match self {
            Stmt::Sum(..) => false,
            Stmt::Abort { .. } | Stmt::Skip { .. } | Stmt::Init { .. } | Stmt::Unitary { .. } => {
                true
            }
            Stmt::Seq(a, b) => a.is_normal() && b.is_normal(),
            Stmt::Case { arms, .. } => arms.iter().all(Stmt::is_normal),
            Stmt::While { body, .. } => body.is_normal(),
        }
    }

    /// “Essentially aborts” (Definition 3.2): the program is syntactically
    /// guaranteed to output the zero state.
    ///
    /// Defined on normal programs; a `Sum` never essentially aborts here
    /// (compilation handles additive abort-absorption separately).
    pub fn essentially_aborts(&self) -> bool {
        match self {
            Stmt::Abort { .. } => true,
            Stmt::Seq(a, b) => a.essentially_aborts() || b.essentially_aborts(),
            Stmt::Case { arms, .. } => arms.iter().all(Stmt::essentially_aborts),
            _ => false,
        }
    }

    /// Unfolds a bounded loop one step via the macro of Eq. 3.1:
    ///
    /// * `while(1) M[q]=1 do P done  ≡ case M[q] = 0→skip, 1→P;abort end`
    /// * `while(T) M[q]=1 do P done  ≡ case M[q] = 0→skip, 1→P;while(T-1) end`
    ///
    /// # Panics
    ///
    /// Panics when `self` is not a `While`.
    pub fn unfold_while_once(&self) -> Stmt {
        let Stmt::While { q, bound, body } = self else {
            panic!("unfold_while_once requires a while statement");
        };
        let vars = self.qvar();
        let skip = Stmt::skip(vars.iter().cloned());
        let continuation = if *bound == 1 {
            Stmt::abort(vars.iter().cloned())
        } else {
            Stmt::While {
                q: q.clone(),
                bound: bound - 1,
                body: body.clone(),
            }
        };
        Stmt::Case {
            qs: vec![q.clone()],
            arms: vec![
                skip,
                Stmt::Seq(body.clone(), Box::new(continuation)),
            ],
        }
    }

    /// Canonicalises sequence associativity to the right-leaning form
    /// produced by [`Stmt::seq`] and the parser, leaving everything else
    /// untouched. `;` is semantically associative (Fig. 1b), so two
    /// programs equal up to re-association have identical normal forms.
    pub fn normalize_seq(&self) -> Stmt {
        match self {
            Stmt::Seq(..) => {
                let mut flat = Vec::new();
                self.flatten_seq_into(&mut flat);
                Stmt::seq(flat)
            }
            Stmt::Sum(a, b) => Stmt::Sum(
                Box::new(a.normalize_seq()),
                Box::new(b.normalize_seq()),
            ),
            Stmt::Case { qs, arms } => Stmt::Case {
                qs: qs.clone(),
                arms: arms.iter().map(Stmt::normalize_seq).collect(),
            },
            Stmt::While { q, bound, body } => Stmt::While {
                q: q.clone(),
                bound: *bound,
                body: Box::new(body.normalize_seq()),
            },
            other => other.clone(),
        }
    }

    fn flatten_seq_into(&self, out: &mut Vec<Stmt>) {
        match self {
            Stmt::Seq(a, b) => {
                a.flatten_seq_into(out);
                b.flatten_seq_into(out);
            }
            other => out.push(other.normalize_seq()),
        }
    }

    /// Applies `f` to every statement node, parents before children.
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Seq(a, b) | Stmt::Sum(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Stmt::Case { arms, .. } => {
                for arm in arms {
                    arm.visit(f);
                }
            }
            Stmt::While { body, .. } => body.visit(f),
            _ => {}
        }
    }

    /// Counts unitary-gate applications, with `while(T)` bodies counted `T`
    /// times (the convention of the paper's Table 3, note (2)).
    pub fn gate_count(&self) -> usize {
        match self {
            Stmt::Unitary { .. } => 1,
            Stmt::Seq(a, b) | Stmt::Sum(a, b) => a.gate_count() + b.gate_count(),
            Stmt::Case { arms, .. } => arms.iter().map(Stmt::gate_count).sum(),
            Stmt::While { bound, body, .. } => (*bound as usize) * body.gate_count(),
            _ => 0,
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::to_source(self))
    }
}

/// Convenience: evaluates `C_Rσ(θ)`'s defining property for tests.
#[doc(hidden)]
pub fn controlled_rotation_matrix(sigma: &Matrix, theta: f64) -> Matrix {
    iterated_controlled_rotation(sigma, theta, 1)
}

/// Returns the `R′σ(θ)` gadget *matrix* `(H⊗I)·C_Rσ(θ)·(H⊗I)` for analytic
/// tests (Definition 6.1 composes it from program statements instead).
#[doc(hidden)]
pub fn rprime_matrix(sigma: &Matrix, theta: f64) -> Matrix {
    let dim = sigma.rows();
    let h_lift = Matrix::hadamard().kron(&Matrix::identity(dim));
    h_lift
        .mul(&iterated_controlled_rotation(sigma, theta, 1))
        .mul(&h_lift)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    #[test]
    fn qvar_collects_all_variables() {
        let p = Stmt::seq([
            Stmt::rot(Pauli::X, "t", "q1"),
            Stmt::case_qubit("q2", Stmt::skip([v("q3")]), Stmt::init("q4")),
        ]);
        let vars: Vec<String> = p.qvar().iter().map(|x| x.name().to_string()).collect();
        assert_eq!(vars, ["q1", "q2", "q3", "q4"]);
    }

    #[test]
    fn parameters_are_collected() {
        let p = Stmt::seq([
            Stmt::rot(Pauli::X, "alpha", "q1"),
            Stmt::rot(Pauli::Z, "beta", "q1"),
            Stmt::unitary(Gate::H, [v("q1")]),
        ]);
        let params: Vec<String> = p.parameters().into_iter().collect();
        assert_eq!(params, ["alpha", "beta"]);
    }

    #[test]
    fn normality_detects_sums() {
        let normal = Stmt::rot(Pauli::X, "t", "q1");
        assert!(normal.is_normal());
        let additive = Stmt::Sum(Box::new(normal.clone()), Box::new(normal.clone()));
        assert!(!additive.is_normal());
        let nested = Stmt::case_qubit("q1", additive, normal);
        assert!(!nested.is_normal());
    }

    #[test]
    fn essentially_aborts_cases() {
        let q = || vec![v("q1")];
        let abort = Stmt::abort(q());
        let skip = Stmt::skip(q());
        // Direct abort.
        assert!(abort.essentially_aborts());
        // Sequence with abort on either side.
        assert!(Stmt::seq([skip.clone(), abort.clone()]).essentially_aborts());
        assert!(Stmt::seq([abort.clone(), skip.clone()]).essentially_aborts());
        // Case with all arms aborting vs one arm alive.
        assert!(Stmt::case_qubit("q1", abort.clone(), abort.clone()).essentially_aborts());
        assert!(!Stmt::case_qubit("q1", abort.clone(), skip.clone()).essentially_aborts());
        // U(θ); abort from the paper's Section 3 examples.
        assert!(
            Stmt::seq([Stmt::rot(Pauli::Z, "t", "q1"), abort]).essentially_aborts()
        );
    }

    #[test]
    fn while_unfolds_to_case_macro() {
        let body = Stmt::rot(Pauli::X, "t", "q1");
        let w = Stmt::while_bounded("q1", 2, body.clone());
        let unfolded = w.unfold_while_once();
        let Stmt::Case { qs, arms } = unfolded else {
            panic!("expected case");
        };
        assert_eq!(qs, vec![v("q1")]);
        assert!(matches!(arms[0], Stmt::Skip { .. }));
        let Stmt::Seq(ref b, ref cont) = arms[1] else {
            panic!("expected seq in arm 1");
        };
        assert_eq!(**b, body);
        assert!(matches!(**cont, Stmt::While { bound: 1, .. }));
    }

    #[test]
    fn while_bound_one_unfolds_to_abort() {
        let w = Stmt::while_bounded("q1", 1, Stmt::skip([v("q1")]));
        let Stmt::Case { arms, .. } = w.unfold_while_once() else {
            panic!("expected case");
        };
        let Stmt::Seq(_, ref cont) = arms[1] else {
            panic!("expected seq");
        };
        assert!(matches!(**cont, Stmt::Abort { .. }));
    }

    #[test]
    fn gate_count_multiplies_while_bodies() {
        let body = Stmt::seq([
            Stmt::rot(Pauli::X, "a", "q1"),
            Stmt::rot(Pauli::Y, "b", "q1"),
        ]);
        let w = Stmt::while_bounded("q1", 3, body);
        assert_eq!(w.gate_count(), 6);
    }

    #[test]
    fn controlled_rotation_blocks() {
        // C_Rσ(θ)|0,ψ⟩ = |0⟩⊗Rσ(θ)|ψ⟩ and C_Rσ(θ)|1,ψ⟩ = |1⟩⊗Rσ(θ+π)|ψ⟩.
        let theta = 0.4;
        let c = controlled_rotation_matrix(&Matrix::pauli_y(), theta);
        assert!(c.is_unitary(1e-12));
        let r0 = Matrix::rotation_from_involution(&Matrix::pauli_y(), theta);
        let r1 = Matrix::rotation_from_involution(&Matrix::pauli_y(), theta + PI);
        for (i, j) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            assert!(c.get(i, j).approx_eq(r0.get(i, j), 1e-12));
            assert!(c.get(2 + i, 2 + j).approx_eq(r1.get(i, j), 1e-12));
        }
    }

    #[test]
    fn gate_matrices_are_unitary() {
        let params = Params::from_pairs([("t", 0.3)]);
        let gates = [
            Gate::Rot { axis: Pauli::X, angle: Angle::param("t") },
            Gate::Coupling { axis: Pauli::Z, angle: Angle::param("t") },
            Gate::CRot { controls: 1, axis: Pauli::Y, angle: Angle::param("t") },
            Gate::CCoupling { controls: 1, axis: Pauli::X, angle: Angle::param("t") },
            Gate::CRot { controls: 2, axis: Pauli::Z, angle: Angle::param("t") },
            Gate::CCoupling { controls: 2, axis: Pauli::Y, angle: Angle::param("t") },
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::Cnot,
        ];
        for g in gates {
            let m = g.matrix(&params);
            assert!(m.is_unitary(1e-10), "{} not unitary", g.mnemonic());
            assert_eq!(m.rows(), 1 << g.arity());
        }
    }

    #[test]
    fn angle_arithmetic() {
        let a = Angle::param("t").shifted(PI);
        let params = Params::from_pairs([("t", 1.0)]);
        assert!((a.eval(&params) - (1.0 + PI)).abs() < 1e-15);
        assert!(a.uses_param("t"));
        assert!(!a.uses_param("s"));
        assert!((Angle::constant(2.5).eval(&Params::new()) - 2.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "has no value")]
    fn missing_parameter_panics() {
        Angle::param("missing").eval(&Params::new());
    }

    #[test]
    fn seq_builder_right_associates() {
        let s = Stmt::seq([
            Stmt::init("a"),
            Stmt::init("b"),
            Stmt::init("c"),
        ]);
        let Stmt::Seq(first, rest) = s else { panic!() };
        assert!(matches!(*first, Stmt::Init { .. }));
        assert!(matches!(*rest, Stmt::Seq(..)));
    }

    #[test]
    fn sum_builder_left_associates() {
        let s = Stmt::sum([
            Stmt::init("a"),
            Stmt::init("b"),
            Stmt::init("c"),
        ]);
        let Stmt::Sum(first, last) = s else { panic!() };
        assert!(matches!(*first, Stmt::Sum(..)));
        assert!(matches!(*last, Stmt::Init { .. }));
    }
}
