//! Pure quantum states.

use crate::kernels::{apply_matrix, qubit_bit};
use qdp_linalg::{C64, CVector, Matrix};

/// A pure state `|ψ⟩` of an `n`-qubit register, possibly sub-normalised.
///
/// Sub-normalised states arise as measurement branches: the squared norm is
/// the probability of the branch (this mirrors the paper's use of *partial*
/// density operators to carry probabilities through the semantics).
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::StateVector;
///
/// let mut bell = StateVector::zero_state(2);
/// bell.apply_gate(&Matrix::hadamard(), &[0]);
/// bell.apply_gate(&Matrix::cnot(), &[0, 1]);
/// assert!((bell.probability_of(0b00) - 0.5).abs() < 1e-12);
/// assert!((bell.probability_of(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero_state(n_qubits: usize) -> Self {
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        amps[0] = C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// The computational basis state `|k⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `k >= 2ⁿ`.
    pub fn basis_state(n_qubits: usize, k: usize) -> Self {
        assert!(k < 1 << n_qubits, "basis index {k} out of range");
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        amps[k] = C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics when the length is not a power of two matching `n_qubits`.
    pub fn from_amplitudes(n_qubits: usize, amps: Vec<C64>) -> Self {
        assert_eq!(amps.len(), 1 << n_qubits, "amplitude count must be 2^n");
        StateVector { n_qubits, amps }
    }

    /// The basis state `|b₀b₁…⟩` for classical bits (qubit 0 first).
    pub fn from_bits(bits: &[bool]) -> Self {
        let n = bits.len();
        let mut k = 0usize;
        for (q, &b) in bits.iter().enumerate() {
            if b {
                k |= 1 << qubit_bit(n, q);
            }
        }
        StateVector::basis_state(n, k)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2ⁿ`.
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Borrows the amplitudes.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutably borrows the amplitudes.
    pub fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Squared norm — the total probability carried by this (branch) state.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Probability of observing basis index `k` (relative to a normalised
    /// parent state).
    pub fn probability_of(&self, k: usize) -> f64 {
        self.amps[k].norm_sqr()
    }

    /// Applies an arbitrary operator (not necessarily unitary) on `targets`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or duplicate targets.
    pub fn apply_gate(&mut self, gate: &Matrix, targets: &[usize]) {
        apply_matrix(&mut self.amps, self.n_qubits, gate, targets);
    }

    /// Returns a copy with the operator applied.
    pub fn with_gate(&self, gate: &Matrix, targets: &[usize]) -> StateVector {
        let mut s = self.clone();
        s.apply_gate(gate, targets);
        s
    }

    /// Tensor product `self ⊗ other` (other's qubits appended after).
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let v = CVector::new(self.amps.clone()).kron(&CVector::new(other.amps.clone()));
        StateVector {
            n_qubits: self.n_qubits + other.n_qubits,
            amps: v.into_inner(),
        }
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n_qubits, other.n_qubits, "qubit-count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .fold(C64::ZERO, |acc, (a, b)| acc.mul_add(a.conj(), *b))
    }

    /// Approximate equality within entry-wise tolerance `tol`.
    pub fn approx_eq(&self, other: &StateVector, tol: f64) -> bool {
        self.n_qubits == other.n_qubits
            && self
                .amps
                .iter()
                .zip(&other.amps)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Scales all amplitudes by `s`.
    pub fn scale(&mut self, s: C64) {
        for a in &mut self.amps {
            *a *= s;
        }
    }

    /// Reads out the classical value of qubit `q` assuming the state is a
    /// basis state on that qubit; returns `None` if the qubit is in
    /// superposition (beyond tolerance `1e-9`).
    pub fn classical_bit(&self, q: usize) -> Option<bool> {
        let mask = 1usize << qubit_bit(self.n_qubits, q);
        let mut p1 = 0.0;
        let mut p0 = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            if i & mask != 0 {
                p1 += a.norm_sqr();
            } else {
                p0 += a.norm_sqr();
            }
        }
        let total = p0 + p1;
        if total == 0.0 {
            return None;
        }
        if p1 / total < 1e-9 {
            Some(false)
        } else if p0 / total < 1e-9 {
            Some(true)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_is_normalised() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.dim(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.probability_of(0), 1.0);
    }

    #[test]
    fn from_bits_sets_correct_index() {
        // qubit0=1, qubit1=0, qubit2=1 → index 0b101 = 5
        let s = StateVector::from_bits(&[true, false, true]);
        assert_eq!(s.probability_of(5), 1.0);
    }

    #[test]
    fn bell_state_construction() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&Matrix::hadamard(), &[0]);
        s.apply_gate(&Matrix::cnot(), &[0, 1]);
        assert!((s.probability_of(0) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(3) - 0.5).abs() < 1e-12);
        assert!(s.probability_of(1) < 1e-15);
        assert!(s.probability_of(2) < 1e-15);
    }

    #[test]
    fn unitaries_preserve_norm() {
        let mut s = StateVector::zero_state(3);
        for (g, t) in [
            (Matrix::hadamard(), vec![0]),
            (Matrix::pauli_y(), vec![2]),
            (Matrix::cnot(), vec![0, 2]),
            (Matrix::rotation_from_involution(&Matrix::pauli_x(), 1.3), vec![1]),
        ] {
            s.apply_gate(&g, &t);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tensor_concatenates_registers() {
        let a = StateVector::basis_state(1, 1); // |1⟩
        let b = StateVector::basis_state(2, 0); // |00⟩
        let t = a.tensor(&b);
        assert_eq!(t.num_qubits(), 3);
        assert_eq!(t.probability_of(0b100), 1.0);
    }

    #[test]
    fn classical_bit_detection() {
        let s = StateVector::from_bits(&[true, false]);
        assert_eq!(s.classical_bit(0), Some(true));
        assert_eq!(s.classical_bit(1), Some(false));
        let mut plus = StateVector::zero_state(1);
        plus.apply_gate(&Matrix::hadamard(), &[0]);
        assert_eq!(plus.classical_bit(0), None);
    }

    #[test]
    fn inner_product_with_self_is_norm() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&Matrix::hadamard(), &[1]);
        let ip = s.inner(&s);
        assert!((ip.re - s.norm_sqr()).abs() < 1e-14);
        assert!(ip.im.abs() < 1e-14);
    }
}
