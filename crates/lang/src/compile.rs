//! Compilation of additive programs into multisets of normal programs
//! (Fig. 3 of the paper).
//!
//! `Compile(P(θ))` turns one additive program into the collection of normal
//! `q-while(T)` programs that the differentiation procedure actually runs.
//! The `case` rule uses the *fill-and-break* procedure (Fig. 3b): arm
//! multisets are padded to equal length with `abort` and broken into one
//! `case` program per column.
//!
//! The structural invariant stated under Fig. 3 — every compiled multiset is
//! either exactly `{|abort|}` or contains no essentially-aborting program —
//! is maintained by construction and re-checked in tests.

use crate::ast::Stmt;

/// Compiles an additive program into its multiset of normal programs.
///
/// For a normal input the result is the singleton `{|P|}` (or `{|abort|}`
/// when `P` essentially aborts, mirroring the abort-absorption in the
/// sequence rule).
///
/// # Examples
///
/// ```
/// use qdp_lang::{compile, parse_program};
///
/// let p = parse_program("q1 *= RX(t) + q1 *= RY(t)")?;
/// let compiled = compile::compile(&p);
/// assert_eq!(compiled.len(), 2);
/// assert!(compiled.iter().all(|q| q.is_normal()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(stmt: &Stmt) -> Vec<Stmt> {
    if stmt.is_normal() {
        return if stmt.essentially_aborts() {
            vec![abort_like(stmt)]
        } else {
            vec![stmt.clone()]
        };
    }
    match stmt {
        Stmt::Sum(a, b) => {
            let ca = compile(a);
            let cb = compile(b);
            match (is_abort_multiset(&ca), is_abort_multiset(&cb)) {
                (false, false) => {
                    let mut out = ca;
                    out.extend(cb);
                    out
                }
                (false, true) => ca,
                (true, false) => cb,
                (true, true) => vec![abort_like(stmt)],
            }
        }
        Stmt::Seq(a, b) => {
            let ca = compile(a);
            let cb = compile(b);
            if is_abort_multiset(&ca) || is_abort_multiset(&cb) {
                return vec![abort_like(stmt)];
            }
            let mut out = Vec::with_capacity(ca.len() * cb.len());
            for qa in &ca {
                for qb in &cb {
                    out.push(Stmt::Seq(Box::new(qa.clone()), Box::new(qb.clone())));
                }
            }
            out
        }
        Stmt::Case { qs, arms } => fill_and_break(stmt, qs, arms),
        Stmt::While { .. } => {
            // Additive loop bodies: expand the macro of Eq. 3.1 and reuse the
            // case/seq rules, exactly as Fig. 3 prescribes.
            compile(&stmt.unfold_while_once())
        }
        // Atomic statements are normal and handled by the fast path above.
        _ => unreachable!("atomic statements are normal"),
    }
}

/// The number of non-(essentially-)aborting programs `|#P(θ)|` of
/// Definition 4.3.
pub fn non_aborting_count(stmt: &Stmt) -> usize {
    let compiled = compile(stmt);
    compiled
        .iter()
        .filter(|p| !p.essentially_aborts())
        .count()
}

/// Checks the Fig. 3 invariant on a compiled multiset: either `{|abort|}`
/// or free of essentially-aborting programs.
pub fn invariant_holds(compiled: &[Stmt]) -> bool {
    is_abort_multiset(compiled) || compiled.iter().all(|p| !p.essentially_aborts())
}

fn abort_like(stmt: &Stmt) -> Stmt {
    Stmt::abort(stmt.qvar())
}

fn is_abort_multiset(ms: &[Stmt]) -> bool {
    ms.len() == 1 && ms[0].essentially_aborts()
}

/// The fill-and-break procedure `FB(case)` (Fig. 3b).
fn fill_and_break(whole: &Stmt, qs: &[crate::ast::Var], arms: &[Stmt]) -> Vec<Stmt> {
    // Step 1: per-arm multisets of non-essentially-aborting programs.
    let arm_sets: Vec<Vec<Stmt>> = arms
        .iter()
        .map(|arm| {
            let c = compile(arm);
            if is_abort_multiset(&c) {
                Vec::new()
            } else {
                c
            }
        })
        .collect();

    // Step 2: all empty → {|abort|}.
    let width = arm_sets.iter().map(Vec::len).max().unwrap_or(0);
    if width == 0 {
        return vec![abort_like(whole)];
    }

    // Step 3: pad with abort and break into columns.
    let pad = abort_like(whole);
    (0..width)
        .map(|j| Stmt::Case {
            qs: qs.to_vec(),
            arms: arm_sets
                .iter()
                .map(|set| set.get(j).cloned().unwrap_or_else(|| pad.clone()))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Params, Var};
    use crate::op_sem::{multisets_approx_eq, trace_multiset};
    use crate::parser::parse_program;
    use crate::register::Register;
    use qdp_sim::DensityMatrix;

    fn compiled(src: &str) -> Vec<Stmt> {
        compile(&parse_program(src).unwrap())
    }

    #[test]
    fn normal_programs_compile_to_themselves() {
        let p = parse_program("q1 *= RX(t); q1 *= RY(t)").unwrap();
        assert_eq!(compile(&p), vec![p]);
    }

    #[test]
    fn essentially_aborting_programs_collapse() {
        let out = compiled("q1 *= RX(t); abort[q1]");
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Stmt::Abort { .. }));
    }

    #[test]
    fn sum_concatenates_components() {
        let out = compiled("q1 *= RX(t) + q1 *= RY(t) + q1 *= RZ(t)");
        assert_eq!(out.len(), 3);
        assert!(invariant_holds(&out));
    }

    #[test]
    fn sum_absorbs_aborting_components() {
        let out = compiled("q1 *= RX(t) + abort[q1]");
        assert_eq!(out.len(), 1);
        assert!(!out[0].essentially_aborts());
        let out = compiled("abort[q1] + abort[q1]");
        assert_eq!(out.len(), 1);
        assert!(out[0].essentially_aborts());
    }

    #[test]
    fn sequence_distributes_over_sums() {
        // (A + B); (C + D) → 4 programs.
        let out = compiled("(q1 *= RX(t) + q1 *= RY(t)); (q1 *= RZ(t) + q1 *= H)");
        assert_eq!(out.len(), 4);
        assert!(invariant_holds(&out));
    }

    #[test]
    fn generic_case_example_4_1_shape() {
        // Example 4.1: case with a 2-element sum in arm 0 and a plain arm 1
        // compiles to two case programs, the second padded with abort.
        let out = compiled(
            "case M[q1] = 0 -> (q1 *= RX(a) + q1 *= RY(a)), 1 -> q1 *= RZ(a) end",
        );
        assert_eq!(out.len(), 2);
        let Stmt::Case { arms: arms0, .. } = &out[0] else { panic!() };
        let Stmt::Case { arms: arms1, .. } = &out[1] else { panic!() };
        assert!(!arms0[0].essentially_aborts());
        assert!(!arms0[1].essentially_aborts());
        assert!(!arms1[0].essentially_aborts());
        assert!(arms1[1].essentially_aborts(), "padded arm must abort");
        // The padded case program as a whole does not essentially abort.
        assert!(invariant_holds(&out));
    }

    #[test]
    fn proposition_4_2_traces_agree() {
        let sources = [
            "q1 *= H; (q1 *= RX(a) + q1 *= RY(a))",
            "case M[q1] = 0 -> (q1 *= RX(a) + q1 *= RY(a)), 1 -> q1 *= RZ(a) end",
            "(skip[q1] + abort[q1]); q1 *= RZ(a)",
            "q1 *= H; case M[q1] = 0 -> abort[q1] + skip[q1], 1 -> q1 *= X end",
            "while[2] M[q1] = 1 do q1 *= RX(a) + q1 *= RY(a) done",
        ];
        for src in sources {
            let p = parse_program(src).unwrap();
            let reg = Register::from_program(&p);
            let params = Params::from_pairs([("a", 0.9)]);
            let mut rho = DensityMatrix::pure_zero(reg.len());
            rho.apply_unitary(&qdp_linalg::Matrix::hadamard(), &[0]);

            let lhs: Vec<DensityMatrix> = trace_multiset(&p, &reg, &params, &rho)
                .into_iter()
                .filter(|r| r.trace() > 1e-12)
                .collect();
            let rhs: Vec<DensityMatrix> = compile(&p)
                .iter()
                .flat_map(|q| trace_multiset(q, &reg, &params, &rho))
                .filter(|r| r.trace() > 1e-12)
                .collect();
            assert!(
                multisets_approx_eq(&lhs, &rhs, 1e-10),
                "Proposition 4.2 failed for {src}: {} vs {} traces",
                lhs.len(),
                rhs.len()
            );
        }
    }

    #[test]
    fn compiled_programs_are_normal() {
        let out = compiled(
            "case M[q1] = 0 -> (q1 *= RX(a) + q1 *= RY(a)); q2 *= H, 1 -> skip[q2] end",
        );
        assert!(out.iter().all(Stmt::is_normal));
    }

    #[test]
    fn non_aborting_count_matches_def_4_3() {
        let p = parse_program("q1 *= RX(a) + q1 *= RY(a) + abort[q1]").unwrap();
        assert_eq!(non_aborting_count(&p), 2);
        let p = parse_program("abort[q1]").unwrap();
        assert_eq!(non_aborting_count(&p), 0);
    }

    #[test]
    fn exponential_example_from_section_4() {
        // (Q1+R1);(Q2+R2);(Q3+R3) → 8 programs: |#P| can grow exponentially
        // for general additive programs (the paper's remark after Def. 4.3).
        let out = compiled(
            "(q1 *= X + q1 *= Y); (q1 *= X + q1 *= Y); (q1 *= X + q1 *= Y)",
        );
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn additive_while_body_unfolds() {
        let out = compiled("while[2] M[q1] = 1 do q1 *= RX(a) + q1 *= RY(a) done");
        assert!(out.len() >= 2, "expected several unfolded programs");
        assert!(out.iter().all(Stmt::is_normal));
        assert!(invariant_holds(&out));
        let _ = Var::new("unused");
    }
}
