//! Eigendecomposition of Hermitian matrices via the cyclic Jacobi method.
//!
//! Observables in the paper (Section 5) are Hermitian operators `O`; turning
//! an observable into a projective measurement requires its spectral
//! decomposition `O = Σm λm |ψm⟩⟨ψm|`. The matrices involved are small (the
//! simulated systems have at most a handful of qubits), so the classical
//! Jacobi iteration — quadratically convergent and unconditionally stable for
//! Hermitian input — is the right tool.

use crate::complex::C64;
use crate::matrix::Matrix;

/// Result of a Hermitian eigendecomposition `A = V · diag(λ) · V†`.
///
/// Eigenvalues are sorted in ascending order; the `k`-th column of
/// [`eigenvectors`](Self::eigenvectors) is the eigenvector for
/// `eigenvalues[k]`.
///
/// # Examples
///
/// ```
/// use qdp_linalg::{HermitianEigen, Matrix};
///
/// let eig = HermitianEigen::decompose(&Matrix::pauli_z());
/// assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-12);
/// assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct HermitianEigen {
    /// Real eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub eigenvectors: Matrix,
}

impl HermitianEigen {
    /// Decomposes a Hermitian matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or departs from Hermitian symmetry
    /// by more than `1e-8` in any entry.
    pub fn decompose(a: &Matrix) -> HermitianEigen {
        assert!(a.is_square(), "eigendecomposition requires a square matrix");
        assert!(
            a.is_hermitian(1e-8),
            "eigendecomposition requires a Hermitian matrix"
        );
        let n = a.rows();
        let mut m = a.clone();
        let mut v = Matrix::identity(n);

        const MAX_SWEEPS: usize = 100;
        let tol = 1e-14 * (1.0 + a.frobenius_norm());
        for _ in 0..MAX_SWEEPS {
            if off_diagonal_norm(&m) < tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    jacobi_rotate(&mut m, &mut v, p, q);
                }
            }
        }

        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m.get(i, i).re).collect();
        order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("NaN eigenvalue"));

        let eigenvalues = order.iter().map(|&i| diag[i]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for r in 0..n {
                eigenvectors.set(r, new_col, v.get(r, old_col));
            }
        }
        HermitianEigen {
            eigenvalues,
            eigenvectors,
        }
    }

    /// Reconstructs `V · diag(λ) · V†`; useful for validation.
    pub fn reconstruct(&self) -> Matrix {
        let d = Matrix::diagonal(
            &self
                .eigenvalues
                .iter()
                .map(|&l| C64::real(l))
                .collect::<Vec<_>>(),
        );
        self.eigenvectors.mul(&d).mul(&self.eigenvectors.dagger())
    }

    /// The spectral projectors `|ψm⟩⟨ψm|` paired with their eigenvalues.
    pub fn spectral_projectors(&self) -> Vec<(f64, Matrix)> {
        let n = self.eigenvalues.len();
        (0..n)
            .map(|k| {
                let col: Vec<C64> = (0..n).map(|r| self.eigenvectors.get(r, k)).collect();
                let v = crate::vector::CVector::new(col);
                (self.eigenvalues[k], Matrix::outer(&v, &v))
            })
            .collect()
    }
}

/// Square root of the sum of squared moduli of strictly off-diagonal entries.
fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += m.get(i, j).norm_sqr();
            }
        }
    }
    s.sqrt()
}

/// One complex Jacobi rotation zeroing the `(p, q)` entry of `m`, with the
/// accumulated unitary written into `v`.
fn jacobi_rotate(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize) {
    let apq = m.get(p, q);
    let r = apq.abs();
    if r < 1e-300 {
        return;
    }
    let app = m.get(p, p).re;
    let aqq = m.get(q, q).re;

    // Phase factor w = e^{iφ} = apq/|apq|. Conjugating by W = diag(1, w̄)
    // turns the 2×2 block [[app, r·w], [r·w̄, aqq]] into the real symmetric
    // [[app, r], [r, aqq]].
    let w_conj = (apq / r).conj();

    // Classical real Jacobi angle: cot 2θ = (aqq − app) / (2r).
    let tau = (aqq - app) / (2.0 * r);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    // Combined 2×2 unitary V = W · [[c, s], [-s, c]] =
    // [[c, s], [-w̄·s, w̄·c]]. `vp`/`vq` hold column p and column q of V.
    let vp = (C64::real(c), w_conj * (-s));
    let vq = (C64::real(s), w_conj * c);

    let n = m.rows();
    // Update columns: M ← M · V.
    for i in 0..n {
        let mip = m.get(i, p);
        let miq = m.get(i, q);
        m.set(i, p, mip * vp.0 + miq * vp.1);
        m.set(i, q, mip * vq.0 + miq * vq.1);
    }
    // Update rows: M ← V† · M.
    for j in 0..n {
        let mpj = m.get(p, j);
        let mqj = m.get(q, j);
        m.set(p, j, mpj * vp.0.conj() + mqj * vp.1.conj());
        m.set(q, j, mpj * vq.0.conj() + mqj * vq.1.conj());
    }
    // Accumulate eigenvectors: Vacc ← Vacc · V.
    for i in 0..n {
        let vip = v.get(i, p);
        let viq = v.get(i, q);
        v.set(i, p, vip * vp.0 + viq * vp.1);
        v.set(i, q, vip * vq.0 + viq * vq.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_hermitian(n: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so the test needs no external RNG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, C64::real(next()));
            for j in (i + 1)..n {
                let z = C64::new(next(), next());
                m.set(i, j, z);
                m.set(j, i, z.conj());
            }
        }
        m
    }

    #[test]
    fn pauli_eigenvalues_are_plus_minus_one() {
        for m in [Matrix::pauli_x(), Matrix::pauli_y(), Matrix::pauli_z()] {
            let eig = HermitianEigen::decompose(&m);
            assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-12);
            assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reconstruction_matches_input() {
        for seed in 1..6u64 {
            for n in [2usize, 3, 5, 8] {
                let a = random_hermitian(n, seed * 31 + n as u64);
                let eig = HermitianEigen::decompose(&a);
                assert!(
                    eig.reconstruct().approx_eq(&a, 1e-9),
                    "reconstruction failed for n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_unitary() {
        let a = random_hermitian(6, 42);
        let eig = HermitianEigen::decompose(&a);
        assert!(eig.eigenvectors.is_unitary(1e-9));
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = random_hermitian(7, 7);
        let eig = HermitianEigen::decompose(&a);
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn spectral_projectors_resolve_identity() {
        let a = random_hermitian(4, 11);
        let eig = HermitianEigen::decompose(&a);
        let mut sum = Matrix::zeros(4, 4);
        for (_, p) in eig.spectral_projectors() {
            sum = &sum + &p;
        }
        assert!(sum.approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let d = Matrix::diagonal(&[C64::real(3.0), C64::real(-1.0), C64::real(0.5)]);
        let eig = HermitianEigen::decompose(&d);
        assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 0.5).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn non_hermitian_input_panics() {
        let m = Matrix::from_real_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let _ = HermitianEigen::decompose(&m);
    }
}
