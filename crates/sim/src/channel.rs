//! Admissible superoperators in Kraus form and their duals.
//!
//! Section 2.2 of the paper: every superoperator `E` has Kraus operators
//! `{Ek}` with `E(ρ) = Σk EkρEk†`, and a Schrödinger–Heisenberg dual `E*`
//! with Kraus form `Σk Ek† ∘ Ek` satisfying `tr(A·E(ρ)) = tr(E*(A)·ρ)`.
//! The dual is what makes the Sequence rule of the differentiation logic
//! tick (Lemma D.2).

use crate::density::DensityMatrix;
use crate::kernels::{left_mul, right_mul_transposed, PAR_MIN_LEN};
use qdp_linalg::{C64, Matrix};

/// A completely positive, trace-non-increasing map given by Kraus operators
/// acting on a fixed subset of qubits.
///
/// Construction precomputes, per Kraus operator `K`, the adjoint `K†`, the
/// conjugate `K̄ = (K†)ᵀ`, and the transpose `Kᵀ` — the exact factors
/// [`apply`](Self::apply) and [`dual_apply`](Self::dual_apply) feed to the
/// right-multiplication kernel, so no per-application transpose is ever
/// allocated.
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::{DensityMatrix, KrausChannel};
///
/// let dephase = KrausChannel::new(
///     vec![Matrix::basis_projector(2, 0), Matrix::basis_projector(2, 1)],
///     vec![0],
/// )?;
/// let mut rho = DensityMatrix::pure_zero(1);
/// rho.apply_unitary(&Matrix::hadamard(), &[0]);
/// let rho = dephase.apply(&rho);
/// assert!(rho.get(0, 1).abs() < 1e-12);
/// # Ok::<(), qdp_sim::channel::ChannelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct KrausChannel {
    kraus: Vec<Matrix>,
    /// Cached `K†` per operator (left factor of the dual).
    daggers: Vec<Matrix>,
    /// Cached `K̄ = (K†)ᵀ` per operator (pre-transposed right factor of `apply`).
    conjugates: Vec<Matrix>,
    /// Cached `Kᵀ` per operator (pre-transposed right factor of `dual_apply`).
    transposes: Vec<Matrix>,
    targets: Vec<usize>,
}

/// Error constructing a [`KrausChannel`].
#[derive(Clone, Debug, PartialEq)]
pub enum ChannelError {
    /// No Kraus operators were supplied.
    Empty,
    /// Kraus operators have inconsistent or non-square dimensions.
    DimensionMismatch {
        /// The offending dimension found.
        found: (usize, usize),
        /// The dimension required by the target count.
        expected: usize,
    },
    /// `Σ K†K` exceeds the identity: the map would increase trace.
    TraceIncreasing,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Empty => write!(f, "channel needs at least one Kraus operator"),
            ChannelError::DimensionMismatch { found, expected } => write!(
                f,
                "Kraus operator is {}x{}, expected {expected}x{expected}",
                found.0, found.1
            ),
            ChannelError::TraceIncreasing => {
                write!(f, "Kraus operators sum above identity (trace-increasing map)")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

impl KrausChannel {
    /// Creates a channel, validating dimensions and the trace-non-increasing
    /// condition `Σ K†K ⊑ I`.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] when validation fails.
    pub fn new(kraus: Vec<Matrix>, targets: Vec<usize>) -> Result<Self, ChannelError> {
        if kraus.is_empty() {
            return Err(ChannelError::Empty);
        }
        let expected = 1usize << targets.len();
        for k in &kraus {
            if k.rows() != expected || k.cols() != expected {
                return Err(ChannelError::DimensionMismatch {
                    found: (k.rows(), k.cols()),
                    expected,
                });
            }
        }
        let mut sum = Matrix::zeros(expected, expected);
        for k in &kraus {
            sum = &sum + &k.dagger().mul(k);
        }
        let gap = &Matrix::identity(expected) - &sum;
        if !gap.is_psd(1e-8) {
            return Err(ChannelError::TraceIncreasing);
        }
        Ok(KrausChannel::from_parts(kraus, targets))
    }

    /// Builds the channel and its per-operator caches (no validation).
    fn from_parts(kraus: Vec<Matrix>, targets: Vec<usize>) -> Self {
        let daggers: Vec<Matrix> = kraus.iter().map(Matrix::dagger).collect();
        let conjugates: Vec<Matrix> = kraus.iter().map(Matrix::conj).collect();
        let transposes: Vec<Matrix> = kraus.iter().map(Matrix::transpose).collect();
        KrausChannel {
            kraus,
            daggers,
            conjugates,
            transposes,
            targets,
        }
    }

    /// The unitary channel `U ∘ U†`.
    ///
    /// # Panics
    ///
    /// Panics when `u` is not unitary.
    pub fn unitary(u: Matrix, targets: Vec<usize>) -> Self {
        assert!(u.is_unitary(1e-8), "KrausChannel::unitary needs a unitary operator");
        KrausChannel::from_parts(vec![u], targets)
    }

    /// The initialisation channel `E_{q→0}` (Fig. 1b of the paper).
    pub fn initialize_zero(q: usize) -> Self {
        KrausChannel::from_parts(
            vec![
                Matrix::from_real_rows(&[&[1.0, 0.0], &[0.0, 0.0]]),
                Matrix::from_real_rows(&[&[0.0, 1.0], &[0.0, 0.0]]),
            ],
            vec![q],
        )
    }

    /// Single-qubit depolarising noise: with probability `p` the qubit is
    /// replaced by the maximally mixed state.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn depolarizing(q: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        let s0 = (1.0 - 3.0 * p / 4.0).sqrt();
        let sp = (p / 4.0).sqrt();
        KrausChannel::from_parts(
            vec![
                Matrix::identity(2).scale(C64::real(s0)),
                Matrix::pauli_x().scale(C64::real(sp)),
                Matrix::pauli_y().scale(C64::real(sp)),
                Matrix::pauli_z().scale(C64::real(sp)),
            ],
            vec![q],
        )
    }

    /// Single-qubit bit-flip noise: `X` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn bit_flip(q: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        KrausChannel::from_parts(
            vec![
                Matrix::identity(2).scale(C64::real((1.0 - p).sqrt())),
                Matrix::pauli_x().scale(C64::real(p.sqrt())),
            ],
            vec![q],
        )
    }

    /// Single-qubit phase-flip (dephasing) noise: `Z` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn phase_flip(q: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        KrausChannel::from_parts(
            vec![
                Matrix::identity(2).scale(C64::real((1.0 - p).sqrt())),
                Matrix::pauli_z().scale(C64::real(p.sqrt())),
            ],
            vec![q],
        )
    }

    /// Single-qubit amplitude damping with decay probability `gamma`
    /// (spontaneous emission towards `|0⟩`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ gamma ≤ 1`.
    pub fn amplitude_damping(q: usize, gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0,1]");
        let k0 = Matrix::from_rows(&[
            vec![C64::ONE, C64::ZERO],
            vec![C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ]);
        let k1 = Matrix::from_rows(&[
            vec![C64::ZERO, C64::real(gamma.sqrt())],
            vec![C64::ZERO, C64::ZERO],
        ]);
        KrausChannel::from_parts(vec![k0, k1], vec![q])
    }

    /// Borrows the Kraus operators.
    pub fn kraus_operators(&self) -> &[Matrix] {
        &self.kraus
    }

    /// Borrows the target qubits.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Applies the channel: `ρ ↦ Σk KρK†`.
    ///
    /// Uses the cached conjugates (no per-call transpose allocation) and
    /// evaluates the Kraus branches in parallel on large states; the branch
    /// sum is always taken in operator order, so the result is deterministic
    /// under any thread count.
    pub fn apply(&self, rho: &DensityMatrix) -> DensityMatrix {
        let n = rho.num_qubits();
        let data = rho.as_slice();
        let branch = |i: &usize| -> Vec<C64> {
            let mut term = data.to_vec();
            left_mul(&mut term, n, &self.kraus[*i], &self.targets);
            right_mul_transposed(&mut term, n, &self.conjugates[*i], &self.targets);
            term
        };
        let indices: Vec<usize> = (0..self.kraus.len()).collect();
        let terms: Vec<Vec<C64>> = if data.len() >= PAR_MIN_LEN && self.kraus.len() > 1 {
            qdp_par::par_map(&indices, branch)
        } else {
            indices.iter().map(branch).collect()
        };
        let mut acc = vec![C64::ZERO; data.len()];
        for term in &terms {
            for (a, t) in acc.iter_mut().zip(term) {
                *a += *t;
            }
        }
        DensityMatrix::from_flat(n, acc)
    }

    /// Applies the Schrödinger–Heisenberg dual to a full-space observable
    /// matrix: `O ↦ Σk K†OK`.
    ///
    /// # Panics
    ///
    /// Panics when `o` is not `2ⁿ × 2ⁿ` for the given register size.
    pub fn dual_apply(&self, o: &Matrix, n_qubits: usize) -> Matrix {
        let dim = 1usize << n_qubits;
        assert!(o.rows() == dim && o.cols() == dim, "observable must be 2^n x 2^n");
        let mut acc = vec![C64::ZERO; dim * dim];
        for (dagger, transpose) in self.daggers.iter().zip(&self.transposes) {
            let mut term = o.as_slice().to_vec();
            left_mul(&mut term, n_qubits, dagger, &self.targets);
            right_mul_transposed(&mut term, n_qubits, transpose, &self.targets);
            for (a, t) in acc.iter_mut().zip(&term) {
                *a += *t;
            }
        }
        Matrix::from_data(dim, dim, acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    #[test]
    fn unitary_channel_matches_direct_conjugation() {
        let ch = KrausChannel::unitary(Matrix::hadamard(), vec![0]);
        let rho = DensityMatrix::pure_zero(2);
        let out = ch.apply(&rho);
        let mut expected = rho.clone();
        expected.apply_unitary(&Matrix::hadamard(), &[0]);
        assert!(out.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn duality_identity_holds() {
        // tr(A·E(ρ)) = tr(E*(A)·ρ) for a dephasing channel and random-ish data.
        let ch = KrausChannel::new(
            vec![Matrix::basis_projector(2, 0), Matrix::basis_projector(2, 1)],
            vec![1],
        )
        .unwrap();
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let rho = DensityMatrix::from_pure(&psi);

        let a = Matrix::pauli_x().kron(&Matrix::pauli_z());
        let lhs = a.trace_mul(&ch.apply(&rho).to_matrix());
        let dual = ch.dual_apply(&a, 2);
        let rhs = dual.trace_mul(&rho.to_matrix());
        assert!(lhs.approx_eq(rhs, 1e-12));
    }

    #[test]
    fn initialize_zero_channel_matches_density_method() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[1]);
        let rho = DensityMatrix::from_pure(&psi);
        let ch = KrausChannel::initialize_zero(1);
        let out = ch.apply(&rho);
        let mut expected = rho.clone();
        expected.initialize_qubit(1);
        assert!(out.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn rejects_trace_increasing_sets() {
        let too_big = Matrix::identity(2).scale(C64::real(1.5));
        let err = KrausChannel::new(vec![too_big], vec![0]).unwrap_err();
        assert_eq!(err, ChannelError::TraceIncreasing);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert_eq!(KrausChannel::new(vec![], vec![0]).unwrap_err(), ChannelError::Empty);
        let err = KrausChannel::new(vec![Matrix::identity(2)], vec![0, 1]).unwrap_err();
        assert!(matches!(err, ChannelError::DimensionMismatch { .. }));
    }

    #[test]
    fn noise_channels_preserve_trace() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let rho = DensityMatrix::from_pure(&psi);
        for ch in [
            KrausChannel::depolarizing(0, 0.3),
            KrausChannel::bit_flip(0, 0.2),
            KrausChannel::phase_flip(0, 0.7),
            KrausChannel::amplitude_damping(0, 0.4),
        ] {
            let out = ch.apply(&rho);
            assert!((out.trace() - 1.0).abs() < 1e-12);
            assert!(out.is_valid(1e-8));
        }
    }

    #[test]
    fn full_depolarizing_yields_maximally_mixed() {
        let rho = DensityMatrix::pure_zero(1);
        let out = KrausChannel::depolarizing(0, 1.0).apply(&rho);
        assert!(out.approx_eq(&DensityMatrix::maximally_mixed(1), 1e-12));
    }

    #[test]
    fn amplitude_damping_decays_towards_zero_state() {
        let one = DensityMatrix::from_pure(&StateVector::basis_state(1, 1));
        let out = KrausChannel::amplitude_damping(0, 1.0).apply(&one);
        assert!(out.approx_eq(&DensityMatrix::pure_zero(1), 1e-12));
        // Partial damping mixes.
        let out = KrausChannel::amplitude_damping(0, 0.25).apply(&one);
        assert!((out.get(0, 0).re - 0.25).abs() < 1e-12);
        assert!((out.get(1, 1).re - 0.75).abs() < 1e-12);
    }

    #[test]
    fn phase_flip_kills_coherences_at_half() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let rho = DensityMatrix::from_pure(&psi);
        let out = KrausChannel::phase_flip(0, 0.5).apply(&rho);
        assert!(out.get(0, 1).abs() < 1e-12);
        assert!((out.get(0, 0).re - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_noise_probability_panics() {
        let _ = KrausChannel::bit_flip(0, 1.5);
    }

    #[test]
    fn trace_non_increasing_on_states() {
        // A strictly sub-unital channel (single projector Kraus op).
        let ch = KrausChannel::new(vec![Matrix::basis_projector(2, 0)], vec![0]).unwrap();
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let rho = DensityMatrix::from_pure(&psi);
        let out = ch.apply(&rho);
        assert!(out.trace() <= rho.trace() + 1e-12);
        assert!((out.trace() - 0.5).abs() < 1e-12);
    }
}
