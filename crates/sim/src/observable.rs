//! Observables — Hermitian read-outs of quantum systems.
//!
//! Section 5 of the paper: an observable `O = Σm λm|ψm⟩⟨ψm|` packages a
//! projective measurement together with a classical value per outcome; the
//! expectation `tr(Oρ)` is the quantity the paper's *observable semantics*
//! assigns to a program, and the quantity whose derivative the whole scheme
//! computes. The paper normalises observables to `-I ⊑ O ⊑ I` (Eq. 5.2) so
//! Chernoff-style sampling bounds apply; [`Observable::is_bounded`] checks
//! that condition.

use crate::density::DensityMatrix;
use crate::kernels::{apply_matrix, qubit_bit};
use crate::state::StateVector;
use qdp_linalg::{C64, HermitianEigen, Matrix, PauliString};

/// Errors from observable constructors that validate their input instead of
/// panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObservableError {
    /// A Pauli sum was built from zero terms.
    EmptyPauliSum,
    /// Term `term` of a Pauli sum acts on `found` qubits while the first
    /// term fixed the register at `expected` qubits.
    QubitCountMismatch {
        /// Qubit count fixed by the first term.
        expected: usize,
        /// Qubit count of the offending term.
        found: usize,
        /// Zero-based index of the offending term.
        term: usize,
    },
}

impl std::fmt::Display for ObservableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObservableError::EmptyPauliSum => {
                write!(f, "a Pauli sum needs at least one term")
            }
            ObservableError::QubitCountMismatch {
                expected,
                found,
                term,
            } => write!(
                f,
                "Pauli-sum term {term} acts on {found} qubits, but the sum is \
                 over {expected} qubits"
            ),
        }
    }
}

impl std::error::Error for ObservableError {}

/// A Hermitian observable acting on a subset of an `n`-qubit register.
///
/// # Examples
///
/// ```
/// use qdp_sim::{DensityMatrix, Observable};
///
/// // Z on qubit 0 of a 2-qubit register: ⟨Z⟩ = +1 on |00⟩.
/// let z = Observable::pauli_z(2, 0);
/// assert!((z.expectation(&DensityMatrix::pure_zero(2)) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct Observable {
    n_qubits: usize,
    targets: Vec<usize>,
    matrix: Matrix,
}

impl Observable {
    /// Creates an observable from a Hermitian matrix on `targets`.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not Hermitian or dimensions mismatch.
    pub fn new(n_qubits: usize, targets: Vec<usize>, matrix: Matrix) -> Self {
        let dim = 1usize << targets.len();
        assert!(
            matrix.rows() == dim && matrix.cols() == dim,
            "observable matrix must be {dim}x{dim} for {} targets",
            targets.len()
        );
        assert!(matrix.is_hermitian(1e-8), "observables must be Hermitian");
        for t in &targets {
            assert!(*t < n_qubits, "target {t} out of range");
        }
        Observable {
            n_qubits,
            targets,
            matrix,
        }
    }

    /// The Pauli-string observable on a full register.
    pub fn from_pauli_string(s: &PauliString) -> Self {
        let n = s.num_qubits();
        Observable {
            n_qubits: n,
            targets: (0..n).collect(),
            matrix: s.matrix(),
        }
    }

    /// A real-weighted sum of Pauli strings `Σk wk·Pk` — the form quantum
    /// many-body Hamiltonians take in VQE applications.
    ///
    /// # Errors
    ///
    /// Returns [`ObservableError::EmptyPauliSum`] for zero terms and
    /// [`ObservableError::QubitCountMismatch`] when a term acts on a
    /// different number of qubits than the first term — combining strings
    /// of different lengths has no well-defined register and must be
    /// rejected, not silently truncated or zero-padded.
    pub fn from_pauli_sum(terms: &[(f64, PauliString)]) -> Result<Self, ObservableError> {
        let n = match terms.first() {
            None => return Err(ObservableError::EmptyPauliSum),
            Some((_, first)) => first.num_qubits(),
        };
        let dim = 1usize << n;
        let mut matrix = Matrix::zeros(dim, dim);
        for (term, (weight, string)) in terms.iter().enumerate() {
            if string.num_qubits() != n {
                return Err(ObservableError::QubitCountMismatch {
                    expected: n,
                    found: string.num_qubits(),
                    term,
                });
            }
            matrix = &matrix + &string.matrix().scale(C64::real(*weight));
        }
        Ok(Observable {
            n_qubits: n,
            targets: (0..n).collect(),
            matrix,
        })
    }

    /// The smallest eigenvalue of the observable — for a Hamiltonian, its
    /// exact ground-state energy (the VQE target).
    pub fn min_eigenvalue(&self) -> f64 {
        HermitianEigen::decompose(&self.matrix).eigenvalues[0]
    }

    /// `Z` on a single qubit.
    pub fn pauli_z(n_qubits: usize, q: usize) -> Self {
        Observable::new(n_qubits, vec![q], Matrix::pauli_z())
    }

    /// The projector `|1⟩⟨1|` on a single qubit — the read-out used by the
    /// paper's classification case study (Section 8.1).
    pub fn projector_one(n_qubits: usize, q: usize) -> Self {
        Observable::new(n_qubits, vec![q], Matrix::basis_projector(2, 1))
    }

    /// The projector `|0⟩⟨0|` on a single qubit.
    pub fn projector_zero(n_qubits: usize, q: usize) -> Self {
        Observable::new(n_qubits, vec![q], Matrix::basis_projector(2, 0))
    }

    /// Register size this observable is defined over.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Target qubits.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// The local matrix on the targets.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Lifts to the full `2ⁿ × 2ⁿ` matrix (tests and duals only — the
    /// expectation path never materialises this).
    pub fn lifted_matrix(&self) -> Matrix {
        crate::kernels::embed(self.n_qubits, &self.matrix, &self.targets)
    }

    /// The extended observable `ZA ⊗ O` of Definition 5.2, where the ancilla
    /// `A` is a freshly prepended qubit 0 (all original targets shift by 1).
    pub fn with_ancilla_z(&self) -> Observable {
        let mut targets = vec![0usize];
        targets.extend(self.targets.iter().map(|t| t + 1));
        Observable {
            n_qubits: self.n_qubits + 1,
            targets,
            matrix: Matrix::pauli_z().kron(&self.matrix),
        }
    }

    /// Checks the paper's normalisation `-I ⊑ O ⊑ I` (Eq. 5.2) within `tol`.
    pub fn is_bounded(&self, tol: f64) -> bool {
        HermitianEigen::decompose(&self.matrix)
            .eigenvalues
            .iter()
            .all(|&l| (-1.0 - tol..=1.0 + tol).contains(&l))
    }

    /// Expectation `tr(Oρ)` against a (partial) density operator.
    ///
    /// # Panics
    ///
    /// Panics when register sizes differ.
    pub fn expectation(&self, rho: &DensityMatrix) -> f64 {
        assert_eq!(
            rho.num_qubits(),
            self.n_qubits,
            "observable register size mismatch"
        );
        let n = self.n_qubits;
        let k = self.targets.len();
        let dim = 1usize << n;
        let masks: Vec<usize> = self
            .targets
            .iter()
            .map(|&t| 1usize << qubit_bit(n, t))
            .collect();
        let mut bits: Vec<usize> = masks.iter().map(|m| m.trailing_zeros() as usize).collect();
        bits.sort_unstable();

        let expand = |local: usize| -> usize {
            let mut full = 0usize;
            for (j, mask) in masks.iter().enumerate() {
                if local & (1 << (k - 1 - j)) != 0 {
                    full |= mask;
                }
            }
            full
        };

        // tr(O_lift · ρ) = Σ_{a,b} O[a][b] Σ_env ρ[(b,env),(a,env)], with the
        // 2^(n−k) environment indices enumerated directly by bit-deposit.
        let mut acc = C64::ZERO;
        let data = rho.as_slice();
        let n_env = 1usize << (n - k);
        for a in 0..(1usize << k) {
            let fa = expand(a);
            for b in 0..(1usize << k) {
                let o_ab = self.matrix.get(a, b);
                if o_ab == C64::ZERO {
                    continue;
                }
                let fb = expand(b);
                let mut env_sum = C64::ZERO;
                for e in 0..n_env {
                    let env = crate::kernels::deposit_zeros(e, &bits);
                    env_sum += data[(fb | env) * dim + (fa | env)];
                }
                acc = acc.mul_add(o_ab, env_sum);
            }
        }
        debug_assert!(acc.im.abs() < 1e-7, "expectation has imaginary part {}", acc.im);
        acc.re
    }

    /// Expectation `⟨ψ|O|ψ⟩` against a pure (possibly sub-normalised) state.
    ///
    /// For observables on at most two targets (every read-out the paper's
    /// pipeline produces, including the `ZA ⊗ O` extension) this is a single
    /// allocation-free pass summing `⟨ψ|` against `O|ψ⟩` orbit by orbit.
    pub fn expectation_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(
            psi.num_qubits(),
            self.n_qubits,
            "observable register size mismatch"
        );
        let (re, im) = psi.planes();
        self.expectation_planes(re, im)
    }

    /// [`expectation_pure`](Self::expectation_pure) on one row's split
    /// `re`/`im` planes — the form the split-plane engine calls. Every
    /// orbit loads its amplitudes from the planes and then runs the
    /// **identical** `mul_add` chain as the AoS oracle form
    /// ([`expectation_amps`](Self::expectation_amps)), so the two layouts
    /// agree bit for bit. The accumulation stays serial: expectations are
    /// conjugate-weighted dot products, not `|amp|²` norms, and their
    /// pinned order predates the lane-split contract.
    ///
    /// # Panics
    ///
    /// Panics when either plane's length is not `2ⁿ`.
    pub fn expectation_planes(&self, re: &[f64], im: &[f64]) -> f64 {
        let dim = 1usize << self.n_qubits;
        assert!(
            re.len() == dim && im.len() == dim,
            "observable register size mismatch"
        );
        if self.targets.len() <= 2 {
            let (off, bits) = self.small_k_layout();
            return self.expectation_small_k_planes(re, im, &off, &bits);
        }
        let mut tre = re.to_vec();
        let mut tim = im.to_vec();
        crate::kernels::apply_matrix_planes(&mut tre, &mut tim, self.n_qubits, &self.matrix, &self.targets);
        let mut acc = C64::ZERO;
        for i in 0..dim {
            let a = C64::new(re[i], im[i]);
            let b = C64::new(tre[i], tim[i]);
            acc = acc.mul_add(a.conj(), b);
        }
        debug_assert!(acc.im.abs() < 1e-7);
        acc.re
    }

    /// [`expectation_pure`](Self::expectation_pure) on a raw amplitude
    /// slice — what batched evaluators call on the rows of a
    /// [`crate::BatchedStates`] block without copying them out first.
    ///
    /// # Panics
    ///
    /// Panics when `amps.len() != 2ⁿ`.
    pub fn expectation_amps(&self, amps: &[C64]) -> f64 {
        assert_eq!(
            amps.len(),
            1usize << self.n_qubits,
            "observable register size mismatch"
        );
        if self.targets.len() <= 2 {
            let (off, bits) = self.small_k_layout();
            return self.expectation_small_k(amps, &off, &bits);
        }
        let mut transformed = amps.to_vec();
        apply_matrix(&mut transformed, self.n_qubits, &self.matrix, &self.targets);
        let acc = amps
            .iter()
            .zip(&transformed)
            .fold(C64::ZERO, |acc, (a, b)| acc.mul_add(a.conj(), *b));
        debug_assert!(acc.im.abs() < 1e-7);
        acc.re
    }

    /// Precomputed index layout of the `k ≤ 2` fast path: the full-index
    /// offset of each local basis state, and the sorted target bit
    /// positions for bit-deposit base enumeration.
    fn small_k_layout(&self) -> ([usize; 4], Vec<usize>) {
        let n = self.n_qubits;
        let k = self.targets.len();
        debug_assert!(k <= 2);
        let masks: Vec<usize> = self
            .targets
            .iter()
            .map(|&t| 1usize << qubit_bit(n, t))
            .collect();
        let mut off = [0usize; 4];
        for (a, slot) in off.iter_mut().enumerate().take(1usize << k) {
            for (j, &mask) in masks.iter().enumerate() {
                if a & (1 << (k - 1 - j)) != 0 {
                    *slot |= mask;
                }
            }
        }
        let mut bits: Vec<usize> = masks.iter().map(|m| m.trailing_zeros() as usize).collect();
        bits.sort_unstable();
        (off, bits)
    }

    /// The `k ≤ 2` expectation inner loop over one amplitude slice, given
    /// a layout from [`small_k_layout`](Self::small_k_layout). Shared by
    /// the single-state and batched read-out paths so their arithmetic can
    /// never drift apart.
    ///
    /// `k = 1` and `k = 2` are fully unrolled — the identical `mul_add`
    /// sequence as the generic loop, so results carry the same bits; only
    /// the per-orbit loop and bounds-check overhead goes away. The generic
    /// loop remains for `k = 0` (trivial observables).
    fn expectation_small_k(&self, amps: &[C64], off: &[usize; 4], bits: &[usize]) -> f64 {
        let n = self.n_qubits;
        let k = self.targets.len();
        let md = self.matrix.as_slice();
        let mut acc = C64::ZERO;
        match k {
            1 => {
                let low = (1usize << bits[0]) - 1;
                let o1 = off[1];
                let (m00, m01, m10, m11) = (md[0], md[1], md[2], md[3]);
                for i in 0..1usize << (n - 1) {
                    let base = ((i & !low) << 1) | (i & low);
                    let s0 = amps[base];
                    let s1 = amps[base | o1];
                    let o_psi = C64::ZERO.mul_add(m00, s0).mul_add(m01, s1);
                    acc = acc.mul_add(s0.conj(), o_psi);
                    let o_psi = C64::ZERO.mul_add(m10, s0).mul_add(m11, s1);
                    acc = acc.mul_add(s1.conj(), o_psi);
                }
            }
            2 => {
                let low0 = (1usize << bits[0]) - 1;
                let low1 = (1usize << bits[1]) - 1;
                for i in 0..1usize << (n - 2) {
                    let mut base = ((i & !low0) << 1) | (i & low0);
                    base = ((base & !low1) << 1) | (base & low1);
                    let s0 = amps[base];
                    let s1 = amps[base | off[1]];
                    let s2 = amps[base | off[2]];
                    let s3 = amps[base | off[3]];
                    let o_psi = C64::ZERO
                        .mul_add(md[0], s0)
                        .mul_add(md[1], s1)
                        .mul_add(md[2], s2)
                        .mul_add(md[3], s3);
                    acc = acc.mul_add(s0.conj(), o_psi);
                    let o_psi = C64::ZERO
                        .mul_add(md[4], s0)
                        .mul_add(md[5], s1)
                        .mul_add(md[6], s2)
                        .mul_add(md[7], s3);
                    acc = acc.mul_add(s1.conj(), o_psi);
                    let o_psi = C64::ZERO
                        .mul_add(md[8], s0)
                        .mul_add(md[9], s1)
                        .mul_add(md[10], s2)
                        .mul_add(md[11], s3);
                    acc = acc.mul_add(s2.conj(), o_psi);
                    let o_psi = C64::ZERO
                        .mul_add(md[12], s0)
                        .mul_add(md[13], s1)
                        .mul_add(md[14], s2)
                        .mul_add(md[15], s3);
                    acc = acc.mul_add(s3.conj(), o_psi);
                }
            }
            _ => {
                let dim_local = 1usize << k;
                for i in 0..1usize << (n - k) {
                    let base = crate::kernels::deposit_zeros(i, bits);
                    let mut s = [C64::ZERO; 4];
                    for (a, slot) in s.iter_mut().enumerate().take(dim_local) {
                        *slot = amps[base | off[a]];
                    }
                    for a in 0..dim_local {
                        let row = a * dim_local;
                        let mut o_psi = C64::ZERO;
                        for b in 0..dim_local {
                            o_psi = o_psi.mul_add(md[row + b], s[b]);
                        }
                        acc = acc.mul_add(s[a].conj(), o_psi);
                    }
                }
            }
        }
        debug_assert!(acc.im.abs() < 1e-7);
        acc.re
    }

    /// The `k ≤ 2` expectation inner loop over one pair of split planes —
    /// a structural transcription of
    /// [`expectation_small_k`](Self::expectation_small_k): amplitudes are
    /// loaded from the planes into `C64`s and fed through the identical
    /// `mul_add` sequence, so results carry the same bits as the AoS
    /// oracle.
    fn expectation_small_k_planes(
        &self,
        re: &[f64],
        im: &[f64],
        off: &[usize; 4],
        bits: &[usize],
    ) -> f64 {
        let n = self.n_qubits;
        let k = self.targets.len();
        let md = self.matrix.as_slice();
        let ld = |i: usize| C64::new(re[i], im[i]);
        let mut acc = C64::ZERO;
        match k {
            1 => {
                let low = (1usize << bits[0]) - 1;
                let o1 = off[1];
                let (m00, m01, m10, m11) = (md[0], md[1], md[2], md[3]);
                for i in 0..1usize << (n - 1) {
                    let base = ((i & !low) << 1) | (i & low);
                    let s0 = ld(base);
                    let s1 = ld(base | o1);
                    let o_psi = C64::ZERO.mul_add(m00, s0).mul_add(m01, s1);
                    acc = acc.mul_add(s0.conj(), o_psi);
                    let o_psi = C64::ZERO.mul_add(m10, s0).mul_add(m11, s1);
                    acc = acc.mul_add(s1.conj(), o_psi);
                }
            }
            2 => {
                let low0 = (1usize << bits[0]) - 1;
                let low1 = (1usize << bits[1]) - 1;
                for i in 0..1usize << (n - 2) {
                    let mut base = ((i & !low0) << 1) | (i & low0);
                    base = ((base & !low1) << 1) | (base & low1);
                    let s0 = ld(base);
                    let s1 = ld(base | off[1]);
                    let s2 = ld(base | off[2]);
                    let s3 = ld(base | off[3]);
                    let o_psi = C64::ZERO
                        .mul_add(md[0], s0)
                        .mul_add(md[1], s1)
                        .mul_add(md[2], s2)
                        .mul_add(md[3], s3);
                    acc = acc.mul_add(s0.conj(), o_psi);
                    let o_psi = C64::ZERO
                        .mul_add(md[4], s0)
                        .mul_add(md[5], s1)
                        .mul_add(md[6], s2)
                        .mul_add(md[7], s3);
                    acc = acc.mul_add(s1.conj(), o_psi);
                    let o_psi = C64::ZERO
                        .mul_add(md[8], s0)
                        .mul_add(md[9], s1)
                        .mul_add(md[10], s2)
                        .mul_add(md[11], s3);
                    acc = acc.mul_add(s2.conj(), o_psi);
                    let o_psi = C64::ZERO
                        .mul_add(md[12], s0)
                        .mul_add(md[13], s1)
                        .mul_add(md[14], s2)
                        .mul_add(md[15], s3);
                    acc = acc.mul_add(s3.conj(), o_psi);
                }
            }
            _ => {
                let dim_local = 1usize << k;
                for i in 0..1usize << (n - k) {
                    let base = crate::kernels::deposit_zeros(i, bits);
                    let mut s = [C64::ZERO; 4];
                    for (a, slot) in s.iter_mut().enumerate().take(dim_local) {
                        *slot = ld(base | off[a]);
                    }
                    for a in 0..dim_local {
                        let row = a * dim_local;
                        let mut o_psi = C64::ZERO;
                        for b in 0..dim_local {
                            o_psi = o_psi.mul_add(md[row + b], s[b]);
                        }
                        acc = acc.mul_add(s[a].conj(), o_psi);
                    }
                }
            }
        }
        debug_assert!(acc.im.abs() < 1e-7);
        acc.re
    }

    /// Per-row expectations `⟨ψr|O|ψr⟩` over a whole [`BatchedStates`]
    /// block in row order — the batched read-out of
    /// [`expectation_amps`](Self::expectation_amps), with the target masks
    /// and local offsets computed **once** and shared by every row. Each
    /// row's arithmetic is identical to the single-state path, so entries
    /// agree bit-for-bit with per-row calls.
    ///
    /// # Panics
    ///
    /// Panics when register sizes differ.
    pub fn expectation_batch(&self, states: &crate::batch::BatchedStates) -> Vec<f64> {
        let mut out = Vec::new();
        self.expectation_batch_into(states, &mut out);
        out
    }

    /// [`expectation_batch`](Self::expectation_batch) writing into a
    /// reusable buffer (cleared and refilled) — the allocation-free form
    /// batched leaf read-outs call once per group.
    ///
    /// # Panics
    ///
    /// Panics when register sizes differ.
    pub fn expectation_batch_into(&self, states: &crate::batch::BatchedStates, out: &mut Vec<f64>) {
        out.clear();
        if states.is_empty() {
            // `from_states(&[])` has no well-defined register; there is
            // nothing to read out either way.
            return;
        }
        assert_eq!(
            states.num_qubits(),
            self.n_qubits,
            "observable register size mismatch"
        );
        if self.targets.len() > 2 {
            out.extend(
                states
                    .iter_row_planes()
                    .map(|(re, im)| self.expectation_planes(re, im)),
            );
            return;
        }
        let (off, bits) = self.small_k_layout();
        out.extend(
            states
                .iter_row_planes()
                .map(|(re, im)| self.expectation_small_k_planes(re, im, &off, &bits)),
        );
    }

    /// Spectral decomposition into `(eigenvalue, projector)` pairs on the
    /// target qubits — the projective measurement an experiment would run to
    /// sample this observable (Eq. 5.1).
    pub fn to_projective(&self) -> Vec<(f64, Matrix)> {
        HermitianEigen::decompose(&self.matrix).spectral_projectors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_z_expectations_on_basis_states() {
        let z = Observable::pauli_z(1, 0);
        let zero = DensityMatrix::pure_zero(1);
        let one = DensityMatrix::from_pure(&StateVector::basis_state(1, 1));
        assert!((z.expectation(&zero) - 1.0).abs() < 1e-12);
        assert!((z.expectation(&one) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_matches_lifted_trace() {
        let mut psi = StateVector::zero_state(3);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 2]);
        psi.apply_gate(&Matrix::rotation_from_involution(&Matrix::pauli_y(), 0.7), &[1]);
        let rho = DensityMatrix::from_pure(&psi);

        let o = Observable::new(
            3,
            vec![2, 0],
            Matrix::pauli_x().kron(&Matrix::pauli_z()),
        );
        let direct = o.expectation(&rho);
        let lifted = o.lifted_matrix().trace_mul(&rho.to_matrix()).re;
        assert!((direct - lifted).abs() < 1e-12);
        let pure = o.expectation_pure(&psi);
        assert!((direct - pure).abs() < 1e-12);
    }

    #[test]
    fn pauli_string_observable() {
        let s: PauliString = "ZZ".parse().unwrap();
        let o = Observable::from_pauli_string(&s);
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        // Bell state: ⟨ZZ⟩ = 1.
        assert!((o.expectation_pure(&psi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ancilla_extension_matches_kron() {
        let o = Observable::pauli_z(1, 0);
        let ext = o.with_ancilla_z();
        assert_eq!(ext.num_qubits(), 2);
        let expected = Matrix::pauli_z().kron(&Matrix::pauli_z());
        assert!(ext.lifted_matrix().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn boundedness_check() {
        assert!(Observable::pauli_z(1, 0).is_bounded(1e-9));
        assert!(Observable::projector_one(1, 0).is_bounded(1e-9));
        let big = Observable::new(1, vec![0], Matrix::pauli_z().scale(C64::real(2.0)));
        assert!(!big.is_bounded(1e-9));
    }

    #[test]
    fn projective_decomposition_reconstructs() {
        let o = Observable::new(
            2,
            vec![0, 1],
            Matrix::pauli_x().kron(&Matrix::pauli_x()),
        );
        let mut sum = Matrix::zeros(4, 4);
        for (l, p) in o.to_projective() {
            sum = &sum + &p.scale(C64::real(l));
        }
        assert!(sum.approx_eq(o.matrix(), 1e-9));
    }

    #[test]
    fn pauli_sum_builds_hamiltonian() {
        // H = Z0 + 0.5·X1 on two qubits.
        let terms = vec![
            (1.0, "ZI".parse::<PauliString>().unwrap()),
            (0.5, "IX".parse::<PauliString>().unwrap()),
        ];
        let h = Observable::from_pauli_sum(&terms).unwrap();
        assert!((h.expectation_pure(&StateVector::zero_state(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_sum_rejects_mismatched_qubit_counts() {
        let terms = vec![
            (1.0, "ZZ".parse::<PauliString>().unwrap()),
            (0.5, "X".parse::<PauliString>().unwrap()),
        ];
        let err = Observable::from_pauli_sum(&terms).unwrap_err();
        assert_eq!(
            err,
            ObservableError::QubitCountMismatch {
                expected: 2,
                found: 1,
                term: 1,
            }
        );
        // The error message names the offending term and both counts.
        let msg = err.to_string();
        assert!(msg.contains("term 1") && msg.contains("1 qubit") && msg.contains("2 qubits"), "{msg}");
    }

    #[test]
    fn pauli_sum_rejects_empty_input() {
        assert_eq!(
            Observable::from_pauli_sum(&[]).unwrap_err(),
            ObservableError::EmptyPauliSum
        );
    }

    #[test]
    fn plane_expectations_match_aos_oracle_bitwise() {
        // k = 1, k = 2, and a generic k = 3 observable: the split-plane
        // path must reproduce the retained AoS oracle exactly.
        let observables = [
            Observable::pauli_z(4, 2),
            Observable::new(4, vec![3, 1], Matrix::pauli_x().kron(&Matrix::pauli_z())),
            Observable::from_pauli_string(&"XYZI".parse::<PauliString>().unwrap()),
        ];
        for (oi, o) in observables.iter().enumerate() {
            let psi = crate::test_support::awkward_state(4, 7 + oi as u64);
            let (re, im) = psi.planes();
            let plane = o.expectation_planes(re, im);
            let aos = o.expectation_amps(&psi.amplitudes());
            assert_eq!(plane.to_bits(), aos.to_bits(), "observable {oi}");
        }
    }

    #[test]
    fn expectation_of_partial_state_scales() {
        let mut rho = DensityMatrix::pure_zero(1);
        rho.scale(0.5);
        let z = Observable::pauli_z(1, 0);
        assert!((z.expectation(&rho) - 0.5).abs() < 1e-12);
    }
}
