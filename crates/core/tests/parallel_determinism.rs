//! Regression tests for the parallel gradient engine: whatever the thread
//! count, `GradientEngine::gradient` must return *bit-identical* results,
//! and the fast kernels must agree with the reference kernels end-to-end.

use qdp_ad::GradientEngine;
use qdp_lang::ast::Params;
use qdp_lang::parse_program;
use qdp_sim::kernels::set_reference_kernels;
use qdp_sim::{DensityMatrix, Observable, StateVector};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Every test here toggles process-global state (the kernel reference mode
/// or the qdp-par thread override), and cargo runs tests on parallel
/// threads — serialize them so each observes only its own configuration.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn setup() -> (GradientEngine, Params, Observable) {
    let p = parse_program(
        "q1 *= RX(a); q2 *= RY(b); q1, q2 *= RZZ(c); \
         case M[q1] = 0 -> q2 *= RY(a), 1 -> q2 *= RZ(b) end; \
         while[2] M[q2] = 1 do q1 *= RX(c) done",
    )
    .unwrap();
    let engine = GradientEngine::new(&p).unwrap();
    let params = Params::from_pairs([("a", 0.31), ("b", -0.87), ("c", 1.41)]);
    let obs = Observable::pauli_z(2, 0);
    (engine, params, obs)
}

fn bits(grad: &BTreeMap<String, f64>) -> Vec<(String, u64)> {
    grad.iter().map(|(k, v)| (k.clone(), v.to_bits())).collect()
}

/// The same evaluation repeated must agree to the last bit (no dependence on
/// scheduling, accumulation order, or thread count).
#[test]
fn gradient_is_bitwise_deterministic_across_thread_counts() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    let (engine, params, obs) = setup();
    let rho = DensityMatrix::pure_zero(2);
    let psi = StateVector::zero_state(2);

    qdp_par::set_max_threads(1);
    let dense_serial = engine.gradient(&params, &obs, &rho);
    let pure_serial = engine.gradient_pure(&params, &obs, &psi);

    qdp_par::set_max_threads(8);
    let dense_parallel = engine.gradient(&params, &obs, &rho);
    let pure_parallel = engine.gradient_pure(&params, &obs, &psi);
    let dense_repeat = engine.gradient(&params, &obs, &rho);
    qdp_par::set_max_threads(0); // restore auto-detection

    assert_eq!(bits(&dense_serial), bits(&dense_parallel));
    assert_eq!(bits(&pure_serial), bits(&pure_parallel));
    assert_eq!(bits(&dense_parallel), bits(&dense_repeat));
}

/// End-to-end validation of every fast path the gradient exercises: the same
/// gradient computed with the reference kernels agrees to 1e-12.
#[test]
fn gradient_matches_reference_kernels() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    let (engine, params, obs) = setup();
    let rho = DensityMatrix::pure_zero(2);

    let fast = engine.gradient(&params, &obs, &rho);
    set_reference_kernels(true);
    let slow = engine.gradient(&params, &obs, &rho);
    set_reference_kernels(false);

    assert_eq!(fast.len(), slow.len());
    for (name, v) in &fast {
        assert!(
            (v - slow[name]).abs() < 1e-12,
            "∂/∂{name}: fast {v} vs reference {}",
            slow[name]
        );
    }
}

/// The forward value must also be invariant under the kernel switch.
#[test]
fn forward_value_matches_reference_kernels() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    let (engine, params, obs) = setup();
    let rho = DensityMatrix::pure_zero(2);
    let fast = engine.value(&params, &obs, &rho);
    set_reference_kernels(true);
    let slow = engine.value(&params, &obs, &rho);
    set_reference_kernels(false);
    assert!((fast - slow).abs() < 1e-12, "{fast} vs {slow}");
}
