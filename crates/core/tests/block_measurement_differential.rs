//! Differential tests of the **block-level measurement engine** against
//! the per-row oracles.
//!
//! PR 5 replaced the per-row measurement loops of the batched executors
//! (`branch_probabilities_into` / `collapse_amps_into` per row, fresh
//! outcome buckets per fork) with block kernels — one bucketed
//! probability sweep per group, one strided collapse pass per outcome, a
//! pooled scratch arena — in both execution modes. This suite pins the
//! contract at every level:
//!
//! * the block kernels themselves
//!   (`Measurement::branch_probabilities_block` /
//!   `Measurement::collapse_block_into`) match the per-row
//!   `branch_probabilities_pure` / `collapse_pure` oracle **bitwise**,
//!   signed zeros included, on random states and row selections;
//! * exact expectations of randomized **branching** programs (n ≤ 8,
//!   `case`s, resets, bounded `while` unrolls, derivative multisets) over
//!   batches of 1/2/16/33 match the per-row enumeration oracle to
//!   `1e-12`;
//! * sampled trajectories are **bitwise** unchanged: batched sweeps equal
//!   per-row (batch-of-one) sweeps draw for draw, and whole shot-noise
//!   estimates carry identical bits under forced 1/2/8-thread `qdp_par`
//!   configurations;
//! * the weighted-leaf mass budget (`ShotEngine::with_mass_budget`)
//!   deviates from the unpruned oracle by at most ε per row and is exact
//!   (bitwise) at the default ε = 0.

use qdp_ad::{differentiate, GradientEngine};
use qdp_lang::ast::{Angle, Gate, Params, Stmt, Var};
use qdp_lang::Register;
use qdp_linalg::{C64, Pauli};
use qdp_sim::{BatchedStates, Measurement, Observable, ShotEngine, ShotSampler, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Serializes every test in this binary: `set_max_threads` requires a
/// quiesced process (see `batch_equivalence.rs`).
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const TOL: f64 = 1e-12;
const BATCH_SIZES: [usize; 4] = [1, 2, 16, 33];

fn var(i: usize) -> Var {
    Var::new(format!("q{}", i + 1))
}

/// A random **branching** program over `n` qubits: parameterized rotations
/// and couplings interleaved with measurement `case`s, `q := |0⟩` resets,
/// and (with `with_while`) bounded `while` loops. The leading `case`
/// guarantees at least one branch point, so every program exercises the
/// block regrouping.
fn random_branching_program(
    rng: &mut StdRng,
    n: usize,
    params: &[String],
    len: usize,
    with_while: bool,
) -> Stmt {
    let axes = [Pauli::X, Pauli::Y, Pauli::Z];
    let mut stmts: Vec<Stmt> = Vec::with_capacity(len + n + 1);
    for q in 0..n {
        stmts.push(Stmt::unitary(Gate::H, [var(q)]));
    }
    // The guaranteed branch point.
    stmts.push(Stmt::Case {
        qs: vec![var(0)],
        arms: vec![
            Stmt::rot(Pauli::Y, params[0].clone(), var(n - 1)),
            Stmt::rot(Pauli::Z, params[params.len() - 1].clone(), var(0)),
        ],
    });
    for _ in 0..len {
        let param = params[rng.gen_range(0..params.len())].clone();
        let axis = axes[rng.gen_range(0..3usize)];
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..10usize) {
            0..=2 => stmts.push(Stmt::rot(axis, param, var(q))),
            3 => stmts.push(Stmt::unitary(
                Gate::Rot {
                    axis,
                    angle: Angle {
                        param: Some(param),
                        offset: std::f64::consts::PI / 2.0,
                    },
                },
                [var(q)],
            )),
            4 if n >= 2 => {
                let mut q2 = rng.gen_range(0..n);
                while q2 == q {
                    q2 = rng.gen_range(0..n);
                }
                stmts.push(Stmt::unitary(
                    Gate::Coupling {
                        axis,
                        angle: Angle::param(param),
                    },
                    [var(q), var(q2)],
                ));
            }
            5 => stmts.push(Stmt::init(var(q))),
            6 | 7 => {
                let other = params[rng.gen_range(0..params.len())].clone();
                stmts.push(Stmt::Case {
                    qs: vec![var(q)],
                    arms: vec![
                        Stmt::rot(axis, param, var((q + 1) % n)),
                        Stmt::rot(axes[rng.gen_range(0..3usize)], other, var(q)),
                    ],
                });
            }
            _ if with_while => stmts.push(Stmt::while_bounded(
                var(q),
                2,
                Stmt::rot(axis, param, var(q)),
            )),
            _ => stmts.push(Stmt::rot(axis, param, var(q))),
        }
    }
    Stmt::seq(stmts)
}

/// A random normalised pure state on `n` qubits, with sign-rich amplitudes.
fn random_state(rng: &mut StdRng, n: usize) -> StateVector {
    let dim = 1usize << n;
    let mut amps: Vec<C64> = (0..dim)
        .map(|_| C64::new(rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0))
        .collect();
    // Exact zeros and negative zeros exercise the projector kernel's
    // signed-zero contract.
    if dim > 2 {
        amps[rng.gen_range(0..dim)] = C64::new(0.0, -0.0);
    }
    let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a = a.scale(1.0 / norm);
    }
    StateVector::from_amplitudes(n, amps)
}

fn random_batch(rng: &mut StdRng, n: usize, rows: usize) -> Vec<StateVector> {
    (0..rows).map(|_| random_state(rng, n)).collect()
}

struct Case {
    engine: GradientEngine,
    register: Register,
    params: Params,
    obs: Observable,
}

/// The randomized branching-circuit family: small, wide-register, and
/// while-unrolling configurations, up to 8 qubits.
fn cases() -> Vec<Case> {
    let configs: [(u64, usize, usize, usize, bool); 4] = [
        // (seed, qubits, params, ops, with_while)
        (17, 2, 3, 8, true),
        (23, 4, 6, 12, false),
        (31, 5, 8, 14, true),
        (47, 8, 4, 8, false),
    ];
    configs
        .into_iter()
        .map(|(seed, n, n_params, len, with_while)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let names: Vec<String> = (0..n_params).map(|i| format!("t{i}")).collect();
            let program = random_branching_program(&mut rng, n, &names, len, with_while);
            let register = Register::from_program(&program);
            let engine = GradientEngine::new(&program).expect("random programs differentiable");
            let params = Params::from_pairs(
                names
                    .iter()
                    .map(|name| (name.clone(), rng.gen::<f64>() * std::f64::consts::TAU)),
            );
            let obs = Observable::pauli_z(register.len(), rng.gen_range(0..register.len()));
            Case {
                engine,
                register,
                params,
                obs,
            }
        })
        .collect()
}

fn amp_bits(amps: &[C64]) -> Vec<(u64, u64)> {
    amps.iter()
        .map(|a| (a.re.to_bits(), a.im.to_bits()))
        .collect()
}

fn plane_bits(re: &[f64], im: &[f64]) -> Vec<(u64, u64)> {
    re.iter()
        .zip(im)
        .map(|(r, i)| (r.to_bits(), i.to_bits()))
        .collect()
}

#[test]
fn block_probability_kernel_matches_per_row_oracle_bitwise() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for n in [1usize, 3, 6, 8] {
        let mut targets = vec![rng.gen_range(0..n)];
        if n > 1 && rng.gen::<bool>() {
            let mut t2 = rng.gen_range(0..n);
            while t2 == targets[0] {
                t2 = rng.gen_range(0..n);
            }
            targets.push(t2);
        }
        let meas = Measurement::computational(targets.clone());
        for rows in BATCH_SIZES {
            let states = random_batch(&mut rng, n, rows);
            let batch = BatchedStates::from_states(&states);
            let mut table = Vec::new();
            let (bre, bim) = batch.planes();
            meas.branch_probabilities_block(n, bre, bim, &mut table);
            let outcomes = meas.num_outcomes();
            assert_eq!(table.len(), rows * outcomes);
            for (r, psi) in states.iter().enumerate() {
                let oracle = meas.branch_probabilities_pure(psi);
                for (m, (a, b)) in table[r * outcomes..(r + 1) * outcomes]
                    .iter()
                    .zip(&oracle)
                    .enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "n {n} targets {targets:?} rows {rows} row {r} outcome {m}"
                    );
                }
            }
        }
    }
}

#[test]
fn block_collapse_kernel_matches_per_row_oracle_bitwise() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xC011);
    for n in [2usize, 4, 7] {
        let meas = if rng.gen::<bool>() || n < 2 {
            Measurement::computational(vec![rng.gen_range(0..n)])
        } else {
            Measurement::computational(vec![0, n - 1])
        };
        let rows = 9;
        let states = random_batch(&mut rng, n, rows);
        let batch = BatchedStates::from_states(&states);
        // Full, single-row, and strided out-of-order selections.
        let selections: [Vec<usize>; 3] =
            [(0..rows).collect(), vec![4], vec![7, 2, 5, 0]];
        for selected in &selections {
            for outcome in 0..meas.num_outcomes() {
                let mut block_re = Vec::new();
                let mut block_im = Vec::new();
                let (bre, bim) = batch.planes();
                meas.collapse_block_into(n, bre, bim, selected, outcome, &mut block_re, &mut block_im);
                let dim = 1usize << n;
                assert_eq!(block_re.len(), selected.len() * dim);
                assert_eq!(block_im.len(), selected.len() * dim);
                for (j, &r) in selected.iter().enumerate() {
                    let oracle = meas.collapse_pure(&states[r], outcome);
                    let (ore, oim) = oracle.planes();
                    assert_eq!(
                        plane_bits(
                            &block_re[j * dim..(j + 1) * dim],
                            &block_im[j * dim..(j + 1) * dim]
                        ),
                        plane_bits(ore, oim),
                        "n {n} selection {selected:?} outcome {outcome} row {r}"
                    );
                }
            }
        }
    }
}

#[test]
fn exact_branching_expectations_match_per_row_oracle() {
    // The block-measurement exact sweep behind `value_pure_batch` /
    // `derivative_pure_batch` against the per-row enumeration oracle, on
    // branching programs including while unrolls and derivative multisets.
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xB1);
    for (ci, case) in cases().iter().enumerate() {
        let param = case.engine.parameters().next().expect("has parameters");
        let diff = differentiate(case.engine.program(), param).unwrap();
        for rows in BATCH_SIZES {
            let states = random_batch(&mut rng, case.register.len(), rows);
            let batch = BatchedStates::from_states(&states);
            let values = case.engine.value_pure_batch(&case.params, &case.obs, &batch);
            let derivs = diff.derivative_pure_batch(&case.params, &case.obs, &batch);
            for (r, psi) in states.iter().enumerate() {
                let value_oracle = case.engine.value_pure(&case.params, &case.obs, psi);
                assert!(
                    (values[r] - value_oracle).abs() < TOL,
                    "case {ci} rows {rows} row {r}: value {} vs oracle {value_oracle}",
                    values[r]
                );
                let deriv_oracle = diff.derivative_pure(&case.params, &case.obs, psi);
                assert!(
                    (derivs[r] - deriv_oracle).abs() < TOL,
                    "case {ci} ∂/∂{param} rows {rows} row {r}: {} vs oracle {deriv_oracle}",
                    derivs[r]
                );
            }
        }
    }
}

#[test]
fn sampled_trajectories_are_bitwise_invariant_under_batch_composition() {
    // The block regrouping of the sampled executor: a batched `run` must
    // produce, row for row, the identical outcome histories and the
    // identical collapsed amplitude bits as running each row alone with
    // the same derived stream — on the trajectory IRs of real derivative
    // multisets.
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xB2);
    for (ci, case) in cases().iter().enumerate().take(3) {
        let param = case.engine.parameters().next().expect("has parameters");
        let diff = differentiate(case.engine.program(), param).unwrap();
        let skeleton = diff.skeleton();
        let lowered = skeleton.lowered();
        let values = lowered.slot_values(&case.params);
        let Some(prog) = lowered.programs().first() else {
            continue;
        };
        let engine = ShotEngine::new(prog.resolve(&values).to_trajectory());
        // Derivative programs run on |0⟩A ⊗ ψ.
        let n = case.register.len() + 1;
        for rows in BATCH_SIZES {
            let states = random_batch(&mut rng, n, rows);
            let seed = 0xD00 + ci as u64;
            let mut samplers: Vec<ShotSampler> = (0..rows)
                .map(|r| ShotSampler::derived(seed, r as u64))
                .collect();
            let grouped = engine.run(BatchedStates::from_states(&states), &mut samplers);
            for (r, psi) in states.iter().enumerate() {
                let mut solo_sampler = vec![ShotSampler::derived(seed, r as u64)];
                let solo = engine
                    .run(
                        BatchedStates::from_states(std::slice::from_ref(psi)),
                        &mut solo_sampler,
                    )
                    .remove(0);
                assert_eq!(
                    solo.outcomes, grouped[r].outcomes,
                    "case {ci} rows {rows} row {r}: outcome history changed"
                );
                match (&solo.state, &grouped[r].state) {
                    (None, None) => {}
                    (Some(s), Some(g)) => assert_eq!(
                        amp_bits(&s.amplitudes()),
                        amp_bits(&g.amplitudes()),
                        "case {ci} rows {rows} row {r}: collapsed state changed"
                    ),
                    _ => panic!("case {ci} rows {rows} row {r}: abort status changed"),
                }
            }
        }
    }
}

#[test]
fn sampled_estimates_are_bitwise_deterministic_across_thread_counts() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xB3);
    for (ci, case) in cases().iter().enumerate().take(2) {
        let param = case.engine.parameters().next().expect("has parameters");
        let diff = differentiate(case.engine.program(), param).unwrap();
        let psi = random_state(&mut rng, case.register.len());
        let mut runs: Vec<u64> = Vec::new();
        for threads in [1usize, 2, 8] {
            qdp_par::set_max_threads(threads);
            let est = qdp_ad::estimator::estimate_derivative_batched(
                &diff,
                &case.params,
                &case.obs,
                &psi,
                600,
                0xCAFE + ci as u64,
            );
            runs.push(est.to_bits());
        }
        qdp_par::set_max_threads(0); // restore auto-detection
        assert_eq!(runs[0], runs[1], "case {ci}: 1 vs 2 threads");
        assert_eq!(runs[1], runs[2], "case {ci}: 2 vs 8 threads");
    }
}

#[test]
fn mass_budget_error_is_bounded_on_randomized_programs() {
    // `‖Z‖ = 1`, so a pruned exact sweep may deviate from the unpruned
    // oracle by at most the dropped mass — ε per row — and ε = 0 must be
    // the unpruned sweep bit for bit.
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xB4);
    for (ci, case) in cases().iter().enumerate().take(3) {
        let lowered =
            qdp_ad::LoweredSet::lower(std::slice::from_ref(case.engine.program()), &case.register);
        let values = lowered.slot_values(&case.params);
        let traj = lowered.programs()[0].resolve(&values).to_trajectory();
        let states = random_batch(&mut rng, case.register.len(), 9);
        let batch = BatchedStates::from_states(&states);
        let unpruned =
            ShotEngine::new(traj.clone()).expectation_sweep(batch.clone(), &case.obs);
        let zero = ShotEngine::new(traj.clone())
            .with_mass_budget(0.0)
            .expectation_sweep(batch.clone(), &case.obs);
        for (r, (a, b)) in unpruned.iter().zip(&zero).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "case {ci} row {r}: ε = 0 moved bits");
        }
        for epsilon in [0.02, 0.2] {
            let pruned = ShotEngine::new(traj.clone())
                .with_mass_budget(epsilon)
                .expectation_sweep(batch.clone(), &case.obs);
            for (r, (p, e)) in pruned.iter().zip(&unpruned).enumerate() {
                assert!(
                    (p - e).abs() <= epsilon + 1e-12,
                    "case {ci} ε = {epsilon} row {r}: pruned {p} vs oracle {e}"
                );
            }
        }
    }
}
