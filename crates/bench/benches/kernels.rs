//! Kernel-level ablation: the fast-path gate kernels against the full-range
//! reference scan, on the array shapes the paper's evaluation actually
//! stresses (a 10-qubit density matrix = 2²⁰ amplitudes, and the small pure
//! states of the training fast path).

use criterion::{criterion_group, criterion_main, Criterion};
use qdp_linalg::{C64, Matrix};
use qdp_sim::kernels::{apply_matrix, apply_matrix_reference};
use qdp_sim::DensityMatrix;
use std::hint::black_box;
use std::time::Duration;

fn density_amps(n: usize) -> Vec<C64> {
    let mut rho = DensityMatrix::pure_zero(n);
    for q in 0..n {
        rho.apply_unitary(&Matrix::hadamard(), &[q]);
    }
    rho.as_slice().to_vec()
}

fn bench_gate_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_apply_10q_density");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let n = 10usize; // density matrix ⇒ flat array over 2n = 20 qubits
    let amps = density_amps(n);
    let h = Matrix::hadamard();
    let rz = Matrix::rotation_from_involution(&Matrix::pauli_z(), 0.37);
    let crx = qdp_lang::ast::controlled_rotation_matrix(&Matrix::pauli_x(), 0.7);

    let mut buf = amps.clone();
    group.bench_function("fast/H on row qubit 4", |b| {
        b.iter(|| {
            apply_matrix(black_box(&mut buf), 2 * n, &h, &[4]);
        })
    });
    let mut buf = amps.clone();
    group.bench_function("reference/H on row qubit 4", |b| {
        b.iter(|| {
            apply_matrix_reference(black_box(&mut buf), 2 * n, &h, &[4]);
        })
    });

    let mut buf = amps.clone();
    group.bench_function("fast/RZ (diagonal) on row qubit 4", |b| {
        b.iter(|| {
            apply_matrix(black_box(&mut buf), 2 * n, &rz, &[4]);
        })
    });
    let mut buf = amps.clone();
    group.bench_function("reference/RZ on row qubit 4", |b| {
        b.iter(|| {
            apply_matrix_reference(black_box(&mut buf), 2 * n, &rz, &[4]);
        })
    });

    let mut buf = amps.clone();
    group.bench_function("fast/CRX (block-diag) on row qubits 0,7", |b| {
        b.iter(|| {
            apply_matrix(black_box(&mut buf), 2 * n, &crx, &[0, 7]);
        })
    });
    let mut buf = amps.clone();
    group.bench_function("reference/CRX on row qubits 0,7", |b| {
        b.iter(|| {
            apply_matrix_reference(black_box(&mut buf), 2 * n, &crx, &[0, 7]);
        })
    });
    group.finish();
}

/// Per-tier ablation of the explicit SIMD kernels (`qdp_sim::simd`): the
/// same plane-seam gate sweeps under every tier this host can run, so a
/// criterion report shows exactly what each vector width buys per dispatch
/// class. Workloads: 14-qubit pure state (16 Ki amplitudes, L2-resident) —
/// RX at an interior stride (dense contiguous runs), RX/H/RZ/CNOT at the
/// lowest bit (the `mask = 1` deinterleave shape), and a dense 2q coupling
/// rotation (chunked runs).
fn bench_simd_tiers(c: &mut Criterion) {
    use qdp_sim::simd::{self, SimdTier};
    use qdp_sim::StateVector;

    let mut group = c.benchmark_group("simd_tiers_14q_pure");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    let n = 14usize;
    let mut amps = vec![C64::ZERO; 1 << n];
    amps[0] = C64::new(0.6, 0.8);
    let psi = StateVector::from_amplitudes(n, amps);

    let rx = Matrix::rotation_x(0.7);
    let h = Matrix::hadamard();
    let rz = Matrix::rotation_z(0.7);
    let cnot = Matrix::cnot();
    let rxx = Matrix::coupling_rotation(qdp_linalg::Pauli::X, 0.7);
    let cases: [(&str, &Matrix, &[usize]); 6] = [
        ("rx_interior", &rx, &[5]),
        ("rx_mask1", &rx, &[n - 1]),
        ("h_mask1", &h, &[n - 1]),
        ("rz_mask1", &rz, &[n - 1]),
        ("cnot_mask1", &cnot, &[3, n - 1]),
        ("rxx_runs", &rxx, &[3, 7]),
    ];

    let tiers: Vec<SimdTier> = [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512]
        .into_iter()
        .filter(|&t| t == SimdTier::Scalar || t <= simd::detected_tier())
        .collect();
    for tier in tiers {
        simd::set_tier_cap(tier);
        for (label, m, targets) in cases {
            let mut buf = psi.clone();
            group.bench_function(&format!("{tier:?}/{label}"), |b| {
                b.iter(|| black_box(&mut buf).apply_gate(m, targets))
            });
        }
    }
    simd::set_tier_cap(SimdTier::Avx512); // uncap: active = detected again
    group.finish();
}

fn bench_small_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_apply_6q_pure");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    let h = Matrix::hadamard();
    let mut amps = vec![C64::ZERO; 64];
    amps[0] = C64::ONE;
    let mut buf = amps.clone();
    group.bench_function("fast/H on qubit 3", |b| {
        b.iter(|| apply_matrix(black_box(&mut buf), 6, &h, &[3]))
    });
    let mut buf = amps.clone();
    group.bench_function("reference/H on qubit 3", |b| {
        b.iter(|| apply_matrix_reference(black_box(&mut buf), 6, &h, &[3]))
    });
    group.finish();
}

criterion_group!(benches, bench_gate_apply, bench_simd_tiers, bench_small_state);
criterion_main!(benches);
