//! Lexer for the concrete syntax of the quantum `while`-language.

use std::fmt;

/// A token with its source span (byte offsets).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// Kinds of tokens in the concrete syntax.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier (variable, parameter, or gate mnemonic).
    Ident(String),
    /// An unsigned integer literal.
    Int(u64),
    /// A floating-point literal.
    Float(f64),
    /// `abort`
    Abort,
    /// `skip`
    Skip,
    /// `case`
    Case,
    /// `end`
    End,
    /// `while`
    While,
    /// `do`
    Do,
    /// `done`
    Done,
    /// `pi`
    Pi,
    /// `M` — the measurement marker.
    Meas,
    /// `|0>` — the ket-zero initialiser.
    KetZero,
    /// `:=`
    Assign,
    /// `*=`
    ApplyAssign,
    /// `->`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Equals,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Int(n) => write!(f, "integer {n}"),
            TokenKind::Float(x) => write!(f, "number {x}"),
            TokenKind::Abort => write!(f, "'abort'"),
            TokenKind::Skip => write!(f, "'skip'"),
            TokenKind::Case => write!(f, "'case'"),
            TokenKind::End => write!(f, "'end'"),
            TokenKind::While => write!(f, "'while'"),
            TokenKind::Do => write!(f, "'do'"),
            TokenKind::Done => write!(f, "'done'"),
            TokenKind::Pi => write!(f, "'pi'"),
            TokenKind::Meas => write!(f, "'M'"),
            TokenKind::KetZero => write!(f, "'|0>'"),
            TokenKind::Assign => write!(f, "':='"),
            TokenKind::ApplyAssign => write!(f, "'*='"),
            TokenKind::Arrow => write!(f, "'->'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::Equals => write!(f, "'='"),
        }
    }
}

/// A lexing error with position information.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset where the error occurred.
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises source text. Line comments start with `//`.
///
/// # Errors
///
/// Returns a [`LexError`] on unrecognised characters or malformed literals.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &src[start..i];
            let kind = match word {
                "abort" => TokenKind::Abort,
                "skip" => TokenKind::Skip,
                "case" => TokenKind::Case,
                "end" => TokenKind::End,
                "while" => TokenKind::While,
                "do" => TokenKind::Do,
                "done" => TokenKind::Done,
                "pi" => TokenKind::Pi,
                "M" => TokenKind::Meas,
                _ => TokenKind::Ident(word.to_string()),
            };
            tokens.push(Token { kind, start, end: i });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut is_float = false;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(|b| (*b as char).is_ascii_digit())
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &src[start..i];
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| LexError {
                    message: format!("malformed float literal '{text}'"),
                    position: start,
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| LexError {
                    message: format!("malformed integer literal '{text}'"),
                    position: start,
                })?)
            };
            tokens.push(Token { kind, start, end: i });
            continue;
        }
        // Multi-character symbols.
        let rest = &src[i..];
        let (kind, len) = if rest.starts_with("|0>") {
            (TokenKind::KetZero, 3)
        } else if rest.starts_with(":=") {
            (TokenKind::Assign, 2)
        } else if rest.starts_with("*=") {
            (TokenKind::ApplyAssign, 2)
        } else if rest.starts_with("->") {
            (TokenKind::Arrow, 2)
        } else {
            let kind = match c {
                '(' => TokenKind::LParen,
                ')' => TokenKind::RParen,
                '[' => TokenKind::LBracket,
                ']' => TokenKind::RBracket,
                ',' => TokenKind::Comma,
                ';' => TokenKind::Semicolon,
                '+' => TokenKind::Plus,
                '-' => TokenKind::Minus,
                '*' => TokenKind::Star,
                '/' => TokenKind::Slash,
                '=' => TokenKind::Equals,
                other => {
                    return Err(LexError {
                        message: format!("unexpected character '{other}'"),
                        position: i,
                    });
                }
            };
            (kind, 1)
        };
        i += len;
        tokens.push(Token { kind, start, end: i });
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_init_statement() {
        assert_eq!(
            kinds("q1 := |0>"),
            vec![
                TokenKind::Ident("q1".into()),
                TokenKind::Assign,
                TokenKind::KetZero
            ]
        );
    }

    #[test]
    fn lexes_gate_application() {
        assert_eq!(
            kinds("q1, q2 *= RXX(t + pi)"),
            vec![
                TokenKind::Ident("q1".into()),
                TokenKind::Comma,
                TokenKind::Ident("q2".into()),
                TokenKind::ApplyAssign,
                TokenKind::Ident("RXX".into()),
                TokenKind::LParen,
                TokenKind::Ident("t".into()),
                TokenKind::Plus,
                TokenKind::Pi,
                TokenKind::RParen
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_measurement() {
        assert_eq!(
            kinds("while[2] M[q] = 1 do done end case abort skip"),
            vec![
                TokenKind::While,
                TokenKind::LBracket,
                TokenKind::Int(2),
                TokenKind::RBracket,
                TokenKind::Meas,
                TokenKind::LBracket,
                TokenKind::Ident("q".into()),
                TokenKind::RBracket,
                TokenKind::Equals,
                TokenKind::Int(1),
                TokenKind::Do,
                TokenKind::Done,
                TokenKind::End,
                TokenKind::Case,
                TokenKind::Abort,
                TokenKind::Skip
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("3 2.5 1e3 0.25"),
            vec![
                TokenKind::Int(3),
                TokenKind::Float(2.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.25)
            ]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        assert_eq!(
            kinds("q1 // trailing comment\n := |0> // another"),
            kinds("q1 := |0>")
        );
    }

    #[test]
    fn reports_unexpected_character() {
        let err = tokenize("q1 @ q2").unwrap_err();
        assert_eq!(err.position, 3);
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn spans_cover_source() {
        let toks = tokenize("ab := |0>").unwrap();
        assert_eq!(&"ab := |0>"[toks[0].start..toks[0].end], "ab");
        assert_eq!(&"ab := |0>"[toks[2].start..toks[2].end], "|0>");
    }
}
