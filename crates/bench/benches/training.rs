//! Timing of the Figure 6 training loop: one full-batch epoch (16 samples,
//! forward value + full gradient + optimizer step) of `P1` and `P2`.

use criterion::{criterion_group, criterion_main, Criterion};
use qdp_vqc::circuits::{p1, p2};
use qdp_vqc::loss::SquaredLoss;
use qdp_vqc::optim::GradientDescent;
use qdp_vqc::task;
use qdp_vqc::train::Trainer;
use std::hint::black_box;
use std::time::Duration;

fn data() -> qdp_vqc::train::Dataset {
    task::dataset()
        .into_iter()
        .map(|s| (s.input_state(), s.target()))
        .collect()
}

fn bench_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_epoch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let mut t1 = Trainer::new(&p1(), task::readout_observable(), data())
        .expect("P1 differentiable");
    t1.init_params_seeded(11);
    let mut opt1 = GradientDescent::new(0.5);
    group.bench_function("P1 epoch (16 samples, 24 params)", |b| {
        b.iter(|| black_box(t1.epoch(&SquaredLoss, &mut opt1)))
    });

    let mut t2 = Trainer::new(&p2(), task::readout_observable(), data())
        .expect("P2 differentiable");
    t2.init_params_seeded(11);
    let mut opt2 = GradientDescent::new(0.5);
    group.bench_function("P2 epoch (16 samples, 36 params)", |b| {
        b.iter(|| black_box(t2.epoch(&SquaredLoss, &mut opt2)))
    });
    group.finish();
}

criterion_group!(benches, bench_epochs);
criterion_main!(benches);
