//! Statistical tests for [`ShotSampler`] — the shot-noise layer the
//! paper's execution analysis (Section 7) sits on.
//!
//! Everything here runs on **seeded** samplers, so every assertion is a
//! deterministic regression check, not a flaky statistical gamble: the
//! empirical quantities are fixed numbers for a fixed seed, and the bounds
//! they are checked against leave honest statistical headroom.

use qdp_linalg::Matrix;
use qdp_sim::{chernoff_shots, Measurement, Observable, ShotSampler, StateVector};

fn plus_state() -> StateVector {
    let mut psi = StateVector::zero_state(1);
    psi.apply_gate(&Matrix::hadamard(), &[0]);
    psi
}

/// A partially rotated state with ⟨Z⟩ = cos θ strictly between ±1.
fn rotated_state(theta: f64) -> StateVector {
    let mut psi = StateVector::zero_state(1);
    psi.apply_gate(&Matrix::rotation_from_involution(&Matrix::pauli_y(), theta), &[0]);
    psi
}

// ---------------------------------------------------------------------------
// Seeded reproducibility
// ---------------------------------------------------------------------------

#[test]
fn estimate_observable_is_bitwise_reproducible_per_seed() {
    let psi = rotated_state(0.9);
    let z = Observable::pauli_z(1, 0);
    let run = |seed: u64| ShotSampler::seeded(seed).estimate_observable(&psi, &z, 2000);
    assert_eq!(run(42).to_bits(), run(42).to_bits());
    assert_eq!(run(7).to_bits(), run(7).to_bits());
    // Different seeds draw different shot sequences (on a state with
    // genuine shot noise the estimates collide with probability ~0).
    assert_ne!(run(42).to_bits(), run(7).to_bits());
}

#[test]
fn interleaved_use_does_not_break_reproducibility() {
    // The estimate depends only on the sampler's stream position, which a
    // fixed seed pins down across runs.
    let psi = plus_state();
    let z = Observable::pauli_z(1, 0);
    let m = Measurement::computational(vec![0]);
    let run = |seed: u64| {
        let mut s = ShotSampler::seeded(seed);
        let first = s.estimate_observable(&psi, &z, 500);
        let outcome = s.measure(&psi, &m).0;
        let second = s.estimate_observable(&psi, &z, 500);
        (first.to_bits(), outcome, second.to_bits())
    };
    assert_eq!(run(1234), run(1234));
}

// ---------------------------------------------------------------------------
// Chernoff budget
// ---------------------------------------------------------------------------

/// `chernoff_shots(m, δ)` prescribes the repetition count for estimating a
/// sum of `m` bounded read-outs to additive precision `δ`. For a single
/// observable (`m = 1`) that is `1/δ²` shots, i.e. a standard error of at
/// most `δ` on a ±1-valued read-out. Over repeated independent trials the
/// empirical RMS error must come in at or below that budget, and the mean
/// absolute error below `δ` with room to spare.
#[test]
fn empirical_error_stays_within_chernoff_budget() {
    let z = Observable::pauli_z(1, 0);
    for (seed, theta, delta) in [(5u64, 1.1, 0.1), (91u64, 0.4, 0.2), (17u64, 2.3, 0.1)] {
        let psi = rotated_state(theta);
        let exact = z.expectation_pure(&psi);
        let shots = chernoff_shots(1, delta);
        assert_eq!(shots, ((1.0 / (delta * delta)).ceil()) as usize);

        let trials = 40;
        let mut sampler = ShotSampler::seeded(seed);
        let mut sq_err_sum = 0.0;
        let mut abs_err_sum = 0.0;
        let mut within = 0usize;
        for _ in 0..trials {
            let err = sampler.estimate_observable(&psi, &z, shots) - exact;
            sq_err_sum += err * err;
            abs_err_sum += err.abs();
            if err.abs() <= delta {
                within += 1;
            }
        }
        let rms = (sq_err_sum / trials as f64).sqrt();
        let mean_abs = abs_err_sum / trials as f64;
        // The true standard error is δ·sin θ ≤ δ; the seeded empirical RMS
        // sits near it, far below the 1.25·δ guard.
        assert!(
            rms <= 1.25 * delta,
            "seed {seed}: RMS error {rms} above Chernoff budget δ={delta}"
        );
        assert!(
            mean_abs <= delta,
            "seed {seed}: mean |error| {mean_abs} above δ={delta}"
        );
        // |error| ≤ δ holds for ~68% of trials in the Gaussian limit even
        // at maximal shot variance; require a clear majority.
        assert!(
            within * 2 > trials,
            "seed {seed}: only {within}/{trials} trials within δ={delta}"
        );
    }
}

#[test]
fn error_shrinks_as_the_budget_grows() {
    // Tightening δ by 2x quadruples the budget and must (statistically,
    // and deterministically for these seeds) shrink the empirical RMS.
    let psi = plus_state(); // ⟨Z⟩ = 0, maximal shot variance
    let z = Observable::pauli_z(1, 0);
    let rms = |delta: f64, seed: u64| {
        let shots = chernoff_shots(1, delta);
        let mut sampler = ShotSampler::seeded(seed);
        let trials = 30;
        let sum: f64 = (0..trials)
            .map(|_| {
                let err = sampler.estimate_observable(&psi, &z, shots);
                err * err
            })
            .sum();
        (sum / trials as f64).sqrt()
    };
    assert!(rms(0.05, 3) < rms(0.2, 3));
}

// ---------------------------------------------------------------------------
// `measure` distribution sanity
// ---------------------------------------------------------------------------

#[test]
fn measure_on_basis_states_is_deterministic() {
    let m = Measurement::computational(vec![0]);
    let mut sampler = ShotSampler::seeded(8);
    for _ in 0..50 {
        let (o0, s0) = sampler.measure(&StateVector::zero_state(1), &m);
        assert_eq!(o0, 0);
        assert_eq!(s0.classical_bit(0), Some(false));
        let (o1, s1) = sampler.measure(&StateVector::basis_state(1, 1), &m);
        assert_eq!(o1, 1);
        assert_eq!(s1.classical_bit(0), Some(true));
    }
}

#[test]
fn measure_frequencies_track_born_probabilities() {
    // cos²(θ/2) vs sin²(θ/2) on a rotated state, three angles, 20k shots:
    // the seeded empirical frequency must sit within 0.015 of Born.
    let m = Measurement::computational(vec![0]);
    for (seed, theta) in [(21u64, 0.7f64), (22, 1.9), (23, 2.8)] {
        let psi = rotated_state(theta);
        let p1 = psi.probability_of(1);
        let mut sampler = ShotSampler::seeded(seed);
        let shots = 20_000;
        let ones: usize = (0..shots).map(|_| sampler.measure(&psi, &m).0).sum();
        let freq = ones as f64 / shots as f64;
        assert!(
            (freq - p1).abs() < 0.015,
            "θ={theta}: frequency {freq} vs Born {p1}"
        );
    }
}

#[test]
fn measure_on_entangled_pairs_never_produces_uncorrelated_outcomes() {
    // Bell state: measuring both qubits must always agree.
    let mut bell = StateVector::zero_state(2);
    bell.apply_gate(&Matrix::hadamard(), &[0]);
    bell.apply_gate(&Matrix::cnot(), &[0, 1]);
    let m = Measurement::computational(vec![0, 1]);
    let mut sampler = ShotSampler::seeded(77);
    let mut seen = [0usize; 4];
    for _ in 0..2000 {
        let (outcome, _) = sampler.measure(&bell, &m);
        seen[outcome] += 1;
    }
    assert_eq!(seen[0b01], 0, "anti-correlated outcome observed");
    assert_eq!(seen[0b10], 0, "anti-correlated outcome observed");
    // Both correlated outcomes occur at ~50%.
    let f00 = seen[0b00] as f64 / 2000.0;
    assert!((f00 - 0.5).abs() < 0.03, "frequency of 00 was {f00}");
}

#[test]
fn sample_observable_averages_to_estimate() {
    // `estimate_observable` is exactly the mean of `sample_observable`
    // draws from the same stream position.
    let psi = rotated_state(1.3);
    let z = Observable::pauli_z(1, 0);
    let shots = 500;
    let mut a = ShotSampler::seeded(99);
    let estimate = a.estimate_observable(&psi, &z, shots);
    let mut b = ShotSampler::seeded(99);
    let mean: f64 =
        (0..shots).map(|_| b.sample_observable(&psi, &z)).sum::<f64>() / shots as f64;
    assert_eq!(estimate.to_bits(), mean.to_bits());
}
