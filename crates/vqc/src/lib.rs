//! # qdp-vqc
//!
//! The evaluation layer of the PLDI 2020 reproduction: variational quantum
//! circuits with controls, their training, and the phase-shift-rule
//! baseline.
//!
//! * [`circuits`] — the Section 8.1 case-study programs `Q(Γ)`, `P1`, `P2`,
//! * [`families`] — the QNN/VQE/QAOA benchmark instances of Table 2/3,
//! * [`task`] — the 4-bit classification task `f(z) = ¬(z1⊕z4)`,
//! * [`loss`] / [`optim`] / [`train`] — squared and NLL losses, GD /
//!   momentum / Adam optimizers, and the full-batch training loop,
//! * [`baseline`] — the two-circuit phase-shift rule (what PennyLane
//!   implements), which rejects measurement-controlled programs — the
//!   comparison that motivates the paper's scheme.
//!
//! # Examples
//!
//! ```
//! use qdp_vqc::{baseline::PhaseShift, circuits};
//!
//! // P1 (no control) is differentiable by both schemes; P2 (with control)
//! // only by the paper's code transformation.
//! assert!(PhaseShift::new(&circuits::p1()).is_ok());
//! assert!(PhaseShift::new(&circuits::p2()).is_err());
//! ```

pub mod baseline;
pub mod circuits;
pub mod families;
pub mod hamiltonian;
pub mod loss;
pub mod optim;
pub mod task;
pub mod train;

pub use circuits::{p1, p2, q_block};
pub use families::{Control, Family, InstanceConfig};
pub use train::{Checkpoint, CheckpointError, ShotNoise, Trainer};
