//! Quantum measurements `{Mm}` and branch enumeration.
//!
//! Section 2.3 of the paper: performing `{Mm}` on `ρ` yields outcome `m` with
//! probability `pm = tr(MmρMm†)` and post-measurement state `MmρMm†/pm`. The
//! language semantics works with the *unnormalised* branches `Em(ρ) = MmρMm†`
//! so probabilities ride along inside the partial density operators.

use crate::density::DensityMatrix;
use crate::kernels::{apply_matrix, apply_matrix_planes, local_index, qubit_bit};
use crate::lanes;
use crate::state::StateVector;
use qdp_linalg::{C64, Matrix};

/// One row's bucketed lane-split `|amp|²` sweep over split planes: each
/// constant-outcome **run** of indices feeds its bucket's partials through
/// [`lanes::add_run`], runs in ascending index order, so every bucket gets
/// exactly the bits [`lanes::sum_norm_sqr`] produces over that bucket's
/// members zero-padded to the whole row — which is precisely the collapsed
/// branch's norm. `out` must hold `2^masks.len()` slots.
fn fast_bucket_probs(re: &[f64], im: &[f64], masks: &[usize], out: &mut [f64]) {
    match masks.len() {
        0 => out[0] = lanes::sum_norm_sqr(re, im),
        1 => {
            // Outcome flips every `m` indices: run `t` is local outcome
            // `t & 1`.
            let m = masks[0];
            let mut acc = [[0.0f64; lanes::LANES]; 2];
            for t in 0..re.len() / m {
                lanes::add_run(&mut acc[t & 1], re, im, t * m, m);
            }
            out[0] = lanes::combine(acc[0]);
            out[1] = lanes::combine(acc[1]);
        }
        _ => {
            // Both outcome bits are constant over runs of the smaller mask.
            let (m0, m1) = (masks[0], masks[1]);
            let run = m0.min(m1);
            let mut acc = [[0.0f64; lanes::LANES]; 4];
            for t in 0..re.len() / run {
                let s = t * run;
                let local = (usize::from(s & m0 != 0) << 1) | usize::from(s & m1 != 0);
                lanes::add_run(&mut acc[local], re, im, s, run);
            }
            for (slot, a) in out.iter_mut().zip(acc.iter()) {
                *slot = lanes::combine(*a);
            }
        }
    }
}

/// Appends one row's masked-copy collapse to the destination planes:
/// members copied untouched, non-members multiplied by the real scalar
/// `0.0` component-wise — the identical IEEE signed zeros the diagonal
/// projector kernel produces.
#[inline]
fn collapse_row_planes(
    re: &[f64],
    im: &[f64],
    masks: &[usize],
    outcome: usize,
    out_re: &mut Vec<f64>,
    out_im: &mut Vec<f64>,
) {
    match masks.len() {
        0 => {
            out_re.extend_from_slice(re);
            out_im.extend_from_slice(im);
        }
        1 => {
            let m = masks[0];
            let member = if outcome == 1 { m } else { 0 };
            let keep = |(i, &a): (usize, &f64)| if i & m == member { a } else { a * 0.0 };
            out_re.extend(re.iter().enumerate().map(keep));
            out_im.extend(im.iter().enumerate().map(keep));
        }
        _ => {
            let (m0, m1) = (masks[0], masks[1]);
            let keep = |(i, &a): (usize, &f64)| {
                let local = (usize::from(i & m0 != 0) << 1) | usize::from(i & m1 != 0);
                if local == outcome {
                    a
                } else {
                    a * 0.0
                }
            };
            out_re.extend(re.iter().enumerate().map(keep));
            out_im.extend(im.iter().enumerate().map(keep));
        }
    }
}

/// A quantum measurement: operators `{Mm}` on a subset of qubits with
/// `Σm Mm†Mm = I`.
///
/// # Examples
///
/// ```
/// use qdp_sim::{DensityMatrix, Measurement};
///
/// let m = Measurement::computational(vec![0]);
/// let rho = DensityMatrix::pure_zero(1);
/// let branches = m.branches(&rho);
/// assert!((branches[0].trace() - 1.0).abs() < 1e-12); // outcome 0 certain
/// assert!(branches[1].trace() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct Measurement {
    operators: Vec<Matrix>,
    targets: Vec<usize>,
    /// Whether `operators` are exactly the computational-basis projectors
    /// `{|m⟩⟨m|}` in outcome order — the shape every `case`/`init`
    /// measurement in the language has, and the gate for the
    /// *selected-branch* fast paths ([`branch_probabilities_pure`],
    /// [`collapse_pure`]): probabilities from one bucketed `|amp|²` pass
    /// and a single materialised branch, instead of applying every
    /// operator.
    ///
    /// [`branch_probabilities_pure`]: Measurement::branch_probabilities_pure
    /// [`collapse_pure`]: Measurement::collapse_pure
    computational: bool,
}

/// One unnormalised branch of a pure-state measurement.
#[derive(Clone, Debug)]
pub struct MeasurementBranch {
    /// The measurement outcome index `m`.
    pub outcome: usize,
    /// The branch probability `pm` (relative to the incoming state's norm).
    pub probability: f64,
    /// The unnormalised post-measurement state `Mm|ψ⟩`.
    pub state: StateVector,
}

impl Measurement {
    /// Creates a measurement from explicit operators.
    ///
    /// # Panics
    ///
    /// Panics when dimensions are inconsistent or the completeness relation
    /// `Σ M†M = I` fails beyond `1e-8`.
    pub fn new(operators: Vec<Matrix>, targets: Vec<usize>) -> Self {
        assert!(!operators.is_empty(), "measurement needs at least one operator");
        let dim = 1usize << targets.len();
        let mut sum = Matrix::zeros(dim, dim);
        for m in &operators {
            assert!(
                m.rows() == dim && m.cols() == dim,
                "measurement operator must be {dim}x{dim}"
            );
            sum = &sum + &m.dagger().mul(m);
        }
        assert!(
            sum.approx_eq(&Matrix::identity(dim), 1e-8),
            "measurement operators must satisfy completeness Σ M†M = I"
        );
        let computational = operators.len() == dim
            && operators
                .iter()
                .enumerate()
                .all(|(m, op)| *op == Matrix::basis_projector(dim, m));
        Measurement {
            operators,
            targets,
            computational,
        }
    }

    /// The computational-basis measurement on `targets`: outcome `m` is the
    /// basis state `|m⟩` of the measured sub-register (target order gives
    /// bit significance, first target most significant).
    pub fn computational(targets: Vec<usize>) -> Self {
        let dim = 1usize << targets.len();
        let operators = (0..dim).map(|k| Matrix::basis_projector(dim, k)).collect();
        Measurement {
            operators,
            targets,
            computational: true,
        }
    }

    /// A two-outcome measurement `{M0, M1}` as used by `while` guards.
    ///
    /// # Panics
    ///
    /// Panics when completeness fails.
    pub fn two_outcome(m0: Matrix, m1: Matrix, targets: Vec<usize>) -> Self {
        Measurement::new(vec![m0, m1], targets)
    }

    /// Number of outcomes.
    pub fn num_outcomes(&self) -> usize {
        self.operators.len()
    }

    /// Borrows the measurement operators.
    pub fn operators(&self) -> &[Matrix] {
        &self.operators
    }

    /// Borrows the measured qubits.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// All unnormalised branches `Em(ρ) = MmρMm†` (the superoperators of the
    /// paper's operational semantics, Fig. 1a).
    pub fn branches(&self, rho: &DensityMatrix) -> Vec<DensityMatrix> {
        self.operators
            .iter()
            .map(|m| {
                let mut branch = rho.clone();
                branch.apply_conjugation(m, &self.targets);
                branch
            })
            .collect()
    }

    /// One branch `Em(ρ)`.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range.
    pub fn branch(&self, rho: &DensityMatrix, outcome: usize) -> DensityMatrix {
        let mut out = rho.clone();
        out.apply_conjugation(&self.operators[outcome], &self.targets);
        out
    }

    /// All branches of a pure state, with probabilities.
    ///
    /// This materialises **every** branch state; it is the reference oracle
    /// the selected-branch fast paths
    /// ([`branch_probabilities_pure`](Self::branch_probabilities_pure) +
    /// [`collapse_pure`](Self::collapse_pure)) are pinned against bitwise.
    pub fn branches_pure(&self, psi: &StateVector) -> Vec<MeasurementBranch> {
        self.operators
            .iter()
            .enumerate()
            .map(|(outcome, m)| {
                let state = psi.with_gate(m, &self.targets);
                MeasurementBranch {
                    outcome,
                    probability: state.norm_sqr(),
                    state,
                }
            })
            .collect()
    }

    /// Whether the fast single-pass paths apply: computational-basis
    /// operators on at most two targets (the only shapes the basis
    /// projectors route through the diagonal kernel, whose arithmetic the
    /// fast paths replicate bit for bit).
    fn fast_computational(&self) -> bool {
        self.computational && self.targets.len() <= 2
    }

    /// The local outcome masks of a fast-path (≤ 2 target) computational
    /// measurement against an `n`-qubit register, allocation-free: bit `j`
    /// of the full index contributes bit `k−1−j` of the outcome (first
    /// target most significant, matching
    /// [`Measurement::computational`]'s operator order). Returns the mask
    /// array and the target count `k`.
    fn outcome_masks(&self, n: usize) -> ([usize; 2], usize) {
        let k = self.targets.len();
        debug_assert!(k <= 2, "fast masks are only built on the fast path");
        let mut masks = [0usize; 2];
        for (j, &t) in self.targets.iter().enumerate() {
            masks[j] = 1usize << qubit_bit(n, t);
        }
        (masks, k)
    }

    /// The branch probabilities `pm = ‖Mm|ψ⟩‖²` of every outcome, without
    /// keeping the branch states.
    ///
    /// For computational measurements on ≤ 2 targets this is a **single
    /// bucketed `|amp|²` pass** over the state: each amplitude contributes
    /// to exactly one outcome bucket, in index order under the lane-split
    /// reduction contract of [`crate::lanes`] — the identical values on the
    /// identical lane partials as `‖Mm|ψ⟩‖²` of the materialised branch
    /// (non-members contribute exact `+0.0` there), so the results equal
    /// [`branches_pure`](Self::branches_pure)'s probabilities **bit for
    /// bit**. Other measurements fall back to applying each operator.
    pub fn branch_probabilities_pure(&self, psi: &StateVector) -> Vec<f64> {
        let mut probs = Vec::new();
        let (re, im) = psi.planes();
        self.branch_probabilities_planes_into(psi.num_qubits(), re, im, &mut probs);
        probs
    }

    /// [`branch_probabilities_pure`](Self::branch_probabilities_pure) on a
    /// raw amplitude slice — what batched executors call on the rows of a
    /// `BatchedStates` block without copying them out first.
    ///
    /// # Panics
    ///
    /// Panics when `amps.len() != 2^n_qubits`.
    pub fn branch_probabilities_amps(&self, n_qubits: usize, amps: &[C64]) -> Vec<f64> {
        let mut probs = Vec::new();
        self.branch_probabilities_into(n_qubits, amps, &mut probs);
        probs
    }

    /// [`branch_probabilities_amps`](Self::branch_probabilities_amps)
    /// writing into a reusable buffer (cleared and refilled) — the retained
    /// **AoS oracle form**: it walks an interleaved `C64` slice amplitude
    /// by amplitude, yet accumulates on the same global-index lane partials
    /// as the split-plane engine, so its results pin the plane forms
    /// bit for bit across the layout seam.
    ///
    /// # Panics
    ///
    /// Panics when `amps.len() != 2^n_qubits`.
    pub fn branch_probabilities_into(&self, n_qubits: usize, amps: &[C64], probs: &mut Vec<f64>) {
        assert_eq!(amps.len(), 1usize << n_qubits, "amplitude slice length mismatch");
        probs.clear();
        probs.resize(self.num_outcomes(), 0.0);
        if !self.fast_computational() {
            // One scratch buffer for all operators: each `Mm|ψ⟩` is the
            // identical arithmetic `with_gate` performs, without building a
            // `StateVector` per operator.
            let mut scratch: Vec<C64> = Vec::with_capacity(amps.len());
            for (m, op) in self.operators.iter().enumerate() {
                scratch.clear();
                scratch.extend_from_slice(amps);
                apply_matrix(&mut scratch, n_qubits, op, &self.targets);
                probs[m] = lanes::sum_norm_sqr_aos(&scratch);
            }
            return;
        }
        let (masks, k) = self.outcome_masks(n_qubits);
        let mut acc = [[0.0f64; lanes::LANES]; 4];
        for (i, a) in amps.iter().enumerate() {
            acc[local_index(i, &masks[..k])][i % lanes::LANES] += a.norm_sqr();
        }
        for (m, p) in probs.iter_mut().enumerate() {
            *p = lanes::combine(acc[m]);
        }
    }

    /// [`branch_probabilities_into`](Self::branch_probabilities_into) on
    /// one row's split `re`/`im` planes — the form the split-plane engine
    /// calls. Fast-path buckets accumulate run by run through
    /// [`lanes::add_run`], which reproduces the AoS oracle's bits exactly
    /// (both follow the global-index lane contract of [`crate::lanes`]).
    ///
    /// # Panics
    ///
    /// Panics when either plane's length is not `2^n_qubits`.
    pub fn branch_probabilities_planes_into(
        &self,
        n_qubits: usize,
        re: &[f64],
        im: &[f64],
        probs: &mut Vec<f64>,
    ) {
        let dim = 1usize << n_qubits;
        assert!(
            re.len() == dim && im.len() == dim,
            "amplitude plane length mismatch"
        );
        probs.clear();
        probs.resize(self.num_outcomes(), 0.0);
        if !self.fast_computational() {
            let mut scratch_re: Vec<f64> = Vec::with_capacity(dim);
            let mut scratch_im: Vec<f64> = Vec::with_capacity(dim);
            for (m, op) in self.operators.iter().enumerate() {
                scratch_re.clear();
                scratch_re.extend_from_slice(re);
                scratch_im.clear();
                scratch_im.extend_from_slice(im);
                apply_matrix_planes(&mut scratch_re, &mut scratch_im, n_qubits, op, &self.targets);
                probs[m] = lanes::sum_norm_sqr(&scratch_re, &scratch_im);
            }
            return;
        }
        let (masks, k) = self.outcome_masks(n_qubits);
        fast_bucket_probs(re, im, &masks[..k], probs);
    }

    /// The branch probabilities of **every row** of a contiguous
    /// `rows × 2ⁿ` pair of split amplitude planes, from **one bucketed
    /// lane-split `|amp|²` sweep** over the whole block: `table` is cleared
    /// and refilled with `rows × num_outcomes` entries, row `r`'s
    /// probabilities at `table[r·outcomes .. (r+1)·outcomes]`.
    ///
    /// Each row's buckets accumulate the identical values on the identical
    /// global-index lane partials as [`branch_probabilities_into`] on that
    /// row alone, so the table matches per-row calls (plane **or** AoS
    /// oracle form) **bit for bit** — the block form merely amortises the
    /// outcome-mask setup and the dispatch over the group. The run-based
    /// sweep walks both planes contiguously, which is what lets the
    /// autovectorizer keep the four lane partials in one vector register.
    /// Non-computational measurements apply each operator per row through
    /// one shared pair of scratch planes.
    ///
    /// [`branch_probabilities_into`]: Measurement::branch_probabilities_into
    ///
    /// # Panics
    ///
    /// Panics when the planes differ in length or don't hold whole rows.
    pub fn branch_probabilities_block(
        &self,
        n_qubits: usize,
        re: &[f64],
        im: &[f64],
        table: &mut Vec<f64>,
    ) {
        let dim = 1usize << n_qubits;
        assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        assert_eq!(re.len() % dim, 0, "block must hold whole rows");
        let outcomes = self.num_outcomes();
        let rows = re.len() / dim;
        table.clear();
        table.resize(rows * outcomes, 0.0);
        if !self.fast_computational() {
            let mut scratch_re: Vec<f64> = Vec::with_capacity(dim);
            let mut scratch_im: Vec<f64> = Vec::with_capacity(dim);
            for ((row_re, row_im), buckets) in re
                .chunks_exact(dim)
                .zip(im.chunks_exact(dim))
                .zip(table.chunks_exact_mut(outcomes))
            {
                for (m, op) in self.operators.iter().enumerate() {
                    scratch_re.clear();
                    scratch_re.extend_from_slice(row_re);
                    scratch_im.clear();
                    scratch_im.extend_from_slice(row_im);
                    apply_matrix_planes(
                        &mut scratch_re,
                        &mut scratch_im,
                        n_qubits,
                        op,
                        &self.targets,
                    );
                    buckets[m] = lanes::sum_norm_sqr(&scratch_re, &scratch_im);
                }
            }
            return;
        }
        let (masks, k) = self.outcome_masks(n_qubits);
        for ((row_re, row_im), buckets) in re
            .chunks_exact(dim)
            .zip(im.chunks_exact(dim))
            .zip(table.chunks_exact_mut(outcomes))
        {
            fast_bucket_probs(row_re, row_im, &masks[..k], buckets);
        }
    }

    /// One unnormalised branch `Mm|ψ⟩` of a pure state — the
    /// selected-branch half of the fast collapse: callers that already know
    /// the outcome (from [`branch_probabilities_pure`](Self::branch_probabilities_pure)
    /// and a draw, or from exact branch enumeration) materialise only this
    /// branch instead of all of them.
    ///
    /// For computational measurements on ≤ 2 targets the projector is
    /// applied as a masked copy replicating the diagonal kernel's
    /// arithmetic exactly (members untouched, non-members multiplied
    /// component-wise by `0.0`, preserving IEEE signed zeros) — the result
    /// equals `psi.with_gate(&operators[outcome], targets)` **bit for
    /// bit**; other measurements go through that very call.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range.
    pub fn collapse_pure(&self, psi: &StateVector, outcome: usize) -> StateVector {
        let n = psi.num_qubits();
        let mut out_re = Vec::with_capacity(psi.dim());
        let mut out_im = Vec::with_capacity(psi.dim());
        let (re, im) = psi.planes();
        self.collapse_planes_into(n, re, im, outcome, &mut out_re, &mut out_im);
        StateVector::from_planes(n, out_re, out_im)
    }

    /// [`collapse_pure`](Self::collapse_pure) writing the collapsed
    /// amplitudes straight onto the end of `out` — how the branch-weighted
    /// batched executor fills an outcome sub-batch block without a
    /// per-row `StateVector` round trip.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range or `amps.len() != 2^n_qubits`.
    pub fn collapse_amps_into(
        &self,
        n_qubits: usize,
        amps: &[C64],
        outcome: usize,
        out: &mut Vec<C64>,
    ) {
        assert!(outcome < self.num_outcomes(), "outcome {outcome} out of range");
        assert_eq!(amps.len(), 1usize << n_qubits, "amplitude slice length mismatch");
        if !self.fast_computational() {
            // Copy once onto the destination and apply the operator in
            // place — the same arithmetic as `with_gate`, without the
            // intermediate `StateVector` round trip.
            let start = out.len();
            out.extend_from_slice(amps);
            apply_matrix(&mut out[start..], n_qubits, &self.operators[outcome], &self.targets);
            return;
        }
        let (masks, k) = self.outcome_masks(n_qubits);
        out.reserve(amps.len());
        for (i, a) in amps.iter().enumerate() {
            out.push(if local_index(i, &masks[..k]) == outcome {
                *a
            } else {
                // The diagonal kernel multiplies non-members by the real
                // scalar 0.0 component-wise; pushing `C64::ZERO` would
                // lose the signed zeros it produces.
                C64::new(a.re * 0.0, a.im * 0.0)
            });
        }
    }

    /// [`collapse_amps_into`](Self::collapse_amps_into) on one row's split
    /// `re`/`im` planes, appending the collapsed row to the destination
    /// planes — the form the split-plane engine calls. The masked copy is
    /// the identical arithmetic as the AoS oracle form (signed zeros
    /// included), so the two layouts agree bit for bit.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range or either plane's length is
    /// not `2^n_qubits`.
    pub fn collapse_planes_into(
        &self,
        n_qubits: usize,
        re: &[f64],
        im: &[f64],
        outcome: usize,
        out_re: &mut Vec<f64>,
        out_im: &mut Vec<f64>,
    ) {
        assert!(outcome < self.num_outcomes(), "outcome {outcome} out of range");
        let dim = 1usize << n_qubits;
        assert!(
            re.len() == dim && im.len() == dim,
            "amplitude plane length mismatch"
        );
        if !self.fast_computational() {
            let start = out_re.len();
            out_re.extend_from_slice(re);
            out_im.extend_from_slice(im);
            apply_matrix_planes(
                &mut out_re[start..],
                &mut out_im[start..],
                n_qubits,
                &self.operators[outcome],
                &self.targets,
            );
            return;
        }
        let (masks, k) = self.outcome_masks(n_qubits);
        out_re.reserve(dim);
        out_im.reserve(dim);
        collapse_row_planes(re, im, &masks[..k], outcome, out_re, out_im);
    }

    /// Materialises outcome `outcome`'s unnormalised branch of the
    /// **selected rows** of a contiguous `rows × 2ⁿ` pair of split
    /// amplitude planes: one strided pass over the surviving source rows
    /// (in `rows` order), appending each collapsed row to the destination
    /// planes — how the block-level regrouping fills one outcome's entire
    /// sub-batch with a single call instead of one
    /// [`collapse_planes_into`](Self::collapse_planes_into) per row.
    ///
    /// Every row's collapse performs the identical masked copy as the
    /// per-row paths in both layouts (non-members multiplied
    /// component-wise by `0.0`, preserving the projector kernel's IEEE
    /// signed zeros), so the destination block equals per-row calls **bit
    /// for bit**.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range, the planes differ in length
    /// or don't hold whole rows, or a selected row index is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn collapse_block_into(
        &self,
        n_qubits: usize,
        re: &[f64],
        im: &[f64],
        rows: &[usize],
        outcome: usize,
        out_re: &mut Vec<f64>,
        out_im: &mut Vec<f64>,
    ) {
        assert!(outcome < self.num_outcomes(), "outcome {outcome} out of range");
        let dim = 1usize << n_qubits;
        assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        assert_eq!(re.len() % dim, 0, "block must hold whole rows");
        if !self.fast_computational() {
            for &r in rows {
                let start = out_re.len();
                out_re.extend_from_slice(&re[r * dim..(r + 1) * dim]);
                out_im.extend_from_slice(&im[r * dim..(r + 1) * dim]);
                apply_matrix_planes(
                    &mut out_re[start..],
                    &mut out_im[start..],
                    n_qubits,
                    &self.operators[outcome],
                    &self.targets,
                );
            }
            return;
        }
        // Same per-block target-count dispatch as the probability sweep;
        // the copy itself is identical amplitude for amplitude (`extend`
        // from an exact-size iterator skips the per-push length updates).
        let (masks, k) = self.outcome_masks(n_qubits);
        out_re.reserve(rows.len() * dim);
        out_im.reserve(rows.len() * dim);
        for &r in rows {
            collapse_row_planes(
                &re[r * dim..(r + 1) * dim],
                &im[r * dim..(r + 1) * dim],
                &masks[..k],
                outcome,
                out_re,
                out_im,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computational_measurement_is_complete() {
        // Constructor would panic otherwise; exercise multi-qubit case.
        let m = Measurement::computational(vec![0, 2]);
        assert_eq!(m.num_outcomes(), 4);
    }

    #[test]
    fn branch_probabilities_sum_to_one() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        let branches = m.branches_pure(&psi);
        let total: f64 = branches.iter().map(|b| b.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((branches[0].probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measuring_bell_state_correlates_qubits() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        for b in m.branches_pure(&psi) {
            if b.probability > 0.0 {
                // After observing qubit 0 = m, qubit 1 must equal m too.
                let normalised = {
                    let mut s = b.state.clone();
                    s.scale(qdp_linalg::C64::real(1.0 / b.probability.sqrt()));
                    s
                };
                assert_eq!(normalised.classical_bit(1), Some(b.outcome == 1));
            }
        }
    }

    #[test]
    fn density_branches_match_pure_branches() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[1]);
        let rho = DensityMatrix::from_pure(&psi);
        let m = Measurement::computational(vec![1]);
        let dense = m.branches(&rho);
        let pure = m.branches_pure(&psi);
        for (d, p) in dense.iter().zip(&pure) {
            assert!((d.trace() - p.probability).abs() < 1e-12);
            assert!(d.approx_eq(&DensityMatrix::from_pure(&p.state), 1e-12));
        }
    }

    #[test]
    fn branches_preserve_total_trace() {
        let mut rho = DensityMatrix::pure_zero(3);
        rho.apply_unitary(&Matrix::hadamard(), &[0]);
        rho.apply_unitary(&Matrix::cnot(), &[0, 2]);
        let m = Measurement::computational(vec![0, 2]);
        let total: f64 = m.branches(&rho).iter().map(|b| b.trace()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn incomplete_operators_panic() {
        let _ = Measurement::new(vec![Matrix::basis_projector(2, 0)], vec![0]);
    }

    use crate::test_support::awkward_state;

    #[test]
    fn fast_probabilities_match_branches_pure_bitwise() {
        for (targets, seed) in [(vec![0usize], 3u64), (vec![2], 4), (vec![1, 3], 5), (vec![3, 0], 6)] {
            let m = Measurement::computational(targets.clone());
            let psi = awkward_state(4, seed);
            let fast = m.branch_probabilities_pure(&psi);
            let oracle = m.branches_pure(&psi);
            assert_eq!(fast.len(), oracle.len());
            for (p, b) in fast.iter().zip(&oracle) {
                assert_eq!(p.to_bits(), b.probability.to_bits(), "targets {targets:?}");
            }
        }
    }

    #[test]
    fn fast_collapse_matches_with_gate_bitwise() {
        for (targets, seed) in [(vec![0usize], 11u64), (vec![2], 12), (vec![0, 2], 13), (vec![3, 1], 14)] {
            let m = Measurement::computational(targets.clone());
            let psi = awkward_state(4, seed);
            for outcome in 0..m.num_outcomes() {
                let fast = m.collapse_pure(&psi, outcome);
                let oracle = psi.with_gate(&m.operators()[outcome], m.targets());
                // Bit equality including zero signs: the masked copy must
                // replicate the diagonal kernel exactly.
                let fast_bits: Vec<(u64, u64)> = fast
                    .amplitudes()
                    .iter()
                    .map(|a| (a.re.to_bits(), a.im.to_bits()))
                    .collect();
                let oracle_bits: Vec<(u64, u64)> = oracle
                    .amplitudes()
                    .iter()
                    .map(|a| (a.re.to_bits(), a.im.to_bits()))
                    .collect();
                assert_eq!(fast_bits, oracle_bits, "targets {targets:?} outcome {outcome}");
            }
        }
    }

    #[test]
    fn general_measurements_use_operator_application() {
        // A non-computational two-outcome measurement (X-basis): the fast
        // flag must be off and both paths still agree with branches_pure.
        let h = Matrix::hadamard();
        let p_plus = h.mul(&Matrix::basis_projector(2, 0)).mul(&h);
        let p_minus = h.mul(&Matrix::basis_projector(2, 1)).mul(&h);
        let m = Measurement::two_outcome(p_plus, p_minus, vec![0]);
        assert!(!m.computational);
        let psi = awkward_state(2, 21);
        let probs = m.branch_probabilities_pure(&psi);
        for (p, b) in probs.iter().zip(&m.branches_pure(&psi)) {
            assert_eq!(p.to_bits(), b.probability.to_bits());
        }
        for outcome in 0..2 {
            assert_eq!(
                m.collapse_pure(&psi, outcome).amplitudes(),
                m.branches_pure(&psi)[outcome].state.amplitudes()
            );
        }
    }

    #[test]
    fn explicit_basis_projectors_are_detected_as_computational() {
        let m = Measurement::new(
            vec![Matrix::basis_projector(2, 0), Matrix::basis_projector(2, 1)],
            vec![1],
        );
        assert!(m.computational);
    }

    /// Packs `count` awkward states into one contiguous pair of planes.
    fn awkward_block(n: usize, count: usize, seed0: u64) -> (Vec<f64>, Vec<f64>) {
        let mut re = Vec::new();
        let mut im = Vec::new();
        for s in 0..count {
            let psi = awkward_state(n, seed0 + s as u64);
            let (r, i) = psi.planes();
            re.extend_from_slice(r);
            im.extend_from_slice(i);
        }
        (re, im)
    }

    #[test]
    fn block_probabilities_match_per_row_calls_bitwise() {
        // The per-row oracle here is the retained **AoS** form, so this
        // pin crosses the layout seam: split-plane block sweep vs
        // interleaved per-row accumulation.
        let h = Matrix::hadamard();
        let x_basis = Measurement::two_outcome(
            h.mul(&Matrix::basis_projector(2, 0)).mul(&h),
            h.mul(&Matrix::basis_projector(2, 1)).mul(&h),
            vec![1],
        );
        let measurements = [
            Measurement::computational(vec![0]),
            Measurement::computational(vec![3]),
            Measurement::computational(vec![2, 0]),
            x_basis,
        ];
        for (mi, m) in measurements.iter().enumerate() {
            for rows in [1usize, 2, 5, 16] {
                let (re, im) = awkward_block(4, rows, 100 * (mi as u64 + 1));
                let mut table = vec![-1.0]; // must be cleared, not appended
                m.branch_probabilities_block(4, &re, &im, &mut table);
                assert_eq!(table.len(), rows * m.num_outcomes());
                let dim = 1usize << 4;
                let mut probs = Vec::new();
                for r in 0..rows {
                    let row = crate::kernels::planes_to_aos(
                        &re[r * dim..(r + 1) * dim],
                        &im[r * dim..(r + 1) * dim],
                    );
                    m.branch_probabilities_into(4, &row, &mut probs);
                    for (o, (a, b)) in table[r * m.num_outcomes()..(r + 1) * m.num_outcomes()]
                        .iter()
                        .zip(&probs)
                        .enumerate()
                    {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "measurement {mi} rows {rows} row {r} outcome {o}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_collapse_matches_per_row_calls_bitwise() {
        // Strided row selections included: the block pass must only touch
        // the selected rows, in selection order, with identical bits —
        // signed zeros of the masked copy included. The per-row oracle is
        // the retained AoS form, crossing the layout seam.
        let h = Matrix::hadamard();
        let x_basis = Measurement::two_outcome(
            h.mul(&Matrix::basis_projector(2, 0)).mul(&h),
            h.mul(&Matrix::basis_projector(2, 1)).mul(&h),
            vec![0],
        );
        let measurements = [
            Measurement::computational(vec![1]),
            Measurement::computational(vec![3, 1]),
            x_basis,
        ];
        let dim = 1usize << 4;
        for (mi, m) in measurements.iter().enumerate() {
            let (re, im) = awkward_block(4, 7, 500 * (mi as u64 + 1));
            for (si, selected) in [vec![0usize, 1, 2, 3, 4, 5, 6], vec![2], vec![6, 0, 3]]
                .iter()
                .enumerate()
            {
                for outcome in 0..m.num_outcomes() {
                    let mut blocked_re = Vec::new();
                    let mut blocked_im = Vec::new();
                    m.collapse_block_into(
                        4,
                        &re,
                        &im,
                        selected,
                        outcome,
                        &mut blocked_re,
                        &mut blocked_im,
                    );
                    assert_eq!(blocked_re.len(), selected.len() * dim);
                    let mut per_row = Vec::new();
                    for &r in selected {
                        let row = crate::kernels::planes_to_aos(
                            &re[r * dim..(r + 1) * dim],
                            &im[r * dim..(r + 1) * dim],
                        );
                        m.collapse_amps_into(4, &row, outcome, &mut per_row);
                    }
                    let blocked_bits: Vec<(u64, u64)> = blocked_re
                        .iter()
                        .zip(&blocked_im)
                        .map(|(a, b)| (a.to_bits(), b.to_bits()))
                        .collect();
                    let per_row_bits: Vec<(u64, u64)> = per_row
                        .iter()
                        .map(|a| (a.re.to_bits(), a.im.to_bits()))
                        .collect();
                    assert_eq!(
                        blocked_bits,
                        per_row_bits,
                        "measurement {mi} selection {si} outcome {outcome}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_outcome_guard_measurement() {
        let m = Measurement::two_outcome(
            Matrix::basis_projector(2, 0),
            Matrix::basis_projector(2, 1),
            vec![1],
        );
        let rho = DensityMatrix::pure_zero(2);
        assert!((m.branch(&rho, 0).trace() - 1.0).abs() < 1e-12);
        assert!(m.branch(&rho, 1).trace() < 1e-12);
    }
}
