//! The differentiation logic (Fig. 5 of the paper).
//!
//! The judgement `S′(θ) | S(θ)` states that `S′` computes the differential
//! semantics of `S` (Definition 5.3). This module represents proofs of the
//! judgement as explicit [`Derivation`] trees, provides [`derive`] to build
//! the canonical proof for the Fig. 4 code transformation, and [`check`] to
//! validate an arbitrary derivation rule by rule.
//!
//! Theorem 6.2 (soundness) says a derivable judgement really does compute
//! the derivative; the numerical side of that claim is exercised by the
//! property tests in `tests/soundness.rs` at the workspace root, while this
//! module guarantees the *syntactic* side — each rule instance is exactly an
//! instance of Fig. 5.

use crate::transform::{transform, TransformError};
use qdp_lang::ast::{Gate, Stmt, Var};
use std::fmt;

/// The inference rules of Fig. 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `∂(abort)|abort`
    Abort,
    /// `∂(skip)|skip`
    Skip,
    /// `∂(q:=|0⟩)|(q:=|0⟩)`
    Initialization,
    /// `∂(U(θ))|U(θ)` when `θj ∉ θ(U)`
    TrivialUnitary,
    /// `∂(Rσ(θ))|Rσ(θ)` and the two-qubit coupling variant
    RotCouple,
    /// Sequential composition
    Sequence,
    /// Case / measurement branching
    Case,
    /// Bounded while (macro over Case + Sequence)
    WhileT,
    /// Additive choice
    SumComponent,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::Abort => "Abort",
            Rule::Skip => "Skip",
            Rule::Initialization => "Initialization",
            Rule::TrivialUnitary => "Trivial-Unitary",
            Rule::RotCouple => "Rot-Couple",
            Rule::Sequence => "Sequence",
            Rule::Case => "Case",
            Rule::WhileT => "While(T)",
            Rule::SumComponent => "Sum Component",
        };
        write!(f, "{name}")
    }
}

/// The judgement `derivative | original` for a fixed parameter and ancilla.
#[derive(Clone, Debug, PartialEq)]
pub struct Judgement {
    /// The candidate derivative program `S′(θ)` (over `v ∪ {A}`).
    pub derivative: Stmt,
    /// The original program `S(θ)`.
    pub original: Stmt,
}

impl fmt::Display for Judgement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "∂(S′) | S  where S = {:.40?}", self.original)
    }
}

/// A derivation tree in the logic of Fig. 5.
#[derive(Clone, Debug, PartialEq)]
pub struct Derivation {
    /// The rule applied at the root.
    pub rule: Rule,
    /// The derived judgement.
    pub conclusion: Judgement,
    /// Sub-derivations, in rule order.
    pub premises: Vec<Derivation>,
}

impl Derivation {
    /// Total number of rule applications in the tree.
    pub fn size(&self) -> usize {
        1 + self.premises.iter().map(Derivation::size).sum::<usize>()
    }

    /// Height of the tree.
    pub fn height(&self) -> usize {
        1 + self
            .premises
            .iter()
            .map(Derivation::height)
            .max()
            .unwrap_or(0)
    }

    /// Renders the proof tree as indented text, one judgement per line:
    ///
    /// ```text
    /// [Sequence] ∂(S′)|S  where S ≈ q1 *= RX(t); q1 *= RY(t)
    ///   [Rot-Couple] … where S ≈ q1 *= RX(t)
    ///   [Rot-Couple] … where S ≈ q1 *= RY(t)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, level: usize) {
        for _ in 0..level {
            out.push_str("  ");
        }
        let subject = summarize(&self.conclusion.original);
        out.push_str(&format!("[{}] ∂(S)|S  where S ≈ {subject}\n", self.rule));
        for premise in &self.premises {
            premise.render_into(out, level + 1);
        }
    }
}

/// One-line summary of a statement for proof-tree rendering.
fn summarize(stmt: &Stmt) -> String {
    let src = qdp_lang::pretty::to_source(stmt);
    let flat = src.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.chars().count() > 48 {
        let prefix: String = flat.chars().take(47).collect();
        format!("{prefix}…")
    } else {
        flat
    }
}

/// An ill-formed derivation.
#[derive(Clone, Debug, PartialEq)]
pub struct LogicError {
    /// Which rule failed to apply.
    pub rule: Rule,
    /// Why it failed.
    pub message: String,
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid use of rule {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for LogicError {}

/// Builds the canonical derivation of `∂/∂θ_param(stmt) | stmt` — the proof
/// tree that justifies the Fig. 4 code transformation.
///
/// # Errors
///
/// Propagates [`TransformError`] (wrapped in a [`LogicError`]) when the
/// program contains gates outside the rule set.
pub fn derive(stmt: &Stmt, param: &str, ancilla: &Var) -> Result<Derivation, LogicError> {
    let derivative = transform(stmt, param, ancilla).map_err(|e: TransformError| LogicError {
        rule: Rule::RotCouple,
        message: e.to_string(),
    })?;
    let conclusion = Judgement {
        derivative,
        original: stmt.clone(),
    };
    let premises: Vec<Derivation> = match stmt {
        Stmt::Abort { .. } | Stmt::Skip { .. } | Stmt::Init { .. } | Stmt::Unitary { .. } => {
            vec![]
        }
        Stmt::Seq(a, b) | Stmt::Sum(a, b) => vec![
            derive(a, param, ancilla)?,
            derive(b, param, ancilla)?,
        ],
        Stmt::Case { arms, .. } => arms
            .iter()
            .map(|arm| derive(arm, param, ancilla))
            .collect::<Result<_, _>>()?,
        Stmt::While { body, .. } => vec![derive(body, param, ancilla)?],
    };
    let rule = rule_for(stmt, param);
    Ok(Derivation {
        rule,
        conclusion,
        premises,
    })
}

fn rule_for(stmt: &Stmt, param: &str) -> Rule {
    match stmt {
        Stmt::Abort { .. } => Rule::Abort,
        Stmt::Skip { .. } => Rule::Skip,
        Stmt::Init { .. } => Rule::Initialization,
        Stmt::Unitary { gate, .. } => {
            if gate.uses_param(param) {
                Rule::RotCouple
            } else {
                Rule::TrivialUnitary
            }
        }
        Stmt::Seq(..) => Rule::Sequence,
        Stmt::Case { .. } => Rule::Case,
        Stmt::While { .. } => Rule::WhileT,
        Stmt::Sum(..) => Rule::SumComponent,
    }
}

/// Checks a derivation tree rule by rule: every node must be a legal
/// instance of its Fig. 5 rule, with the conclusion's derivative built from
/// the premises' derivatives exactly as the code transformation prescribes.
///
/// # Errors
///
/// Returns a [`LogicError`] naming the first offending rule application.
pub fn check(d: &Derivation, param: &str, ancilla: &Var) -> Result<(), LogicError> {
    let original = &d.conclusion.original;

    // The rule must match the statement form.
    let expected_rule = rule_for(original, param);
    if d.rule != expected_rule {
        return Err(LogicError {
            rule: d.rule,
            message: format!(
                "rule {} does not apply to this statement (expected {expected_rule})",
                d.rule
            ),
        });
    }

    // Premises must target the right sub-programs.
    let expected_subjects: Vec<&Stmt> = match original {
        Stmt::Abort { .. } | Stmt::Skip { .. } | Stmt::Init { .. } | Stmt::Unitary { .. } => {
            vec![]
        }
        Stmt::Seq(a, b) | Stmt::Sum(a, b) => vec![a, b],
        Stmt::Case { arms, .. } => arms.iter().collect(),
        Stmt::While { body, .. } => vec![body],
    };
    if expected_subjects.len() != d.premises.len() {
        return Err(LogicError {
            rule: d.rule,
            message: format!(
                "rule {} needs {} premise(s), found {}",
                d.rule,
                expected_subjects.len(),
                d.premises.len()
            ),
        });
    }
    for (premise, subject) in d.premises.iter().zip(&expected_subjects) {
        if &&premise.conclusion.original != subject {
            return Err(LogicError {
                rule: d.rule,
                message: "premise proves a judgement about the wrong sub-program".into(),
            });
        }
        check(premise, param, ancilla)?;
    }

    // The conclusion's derivative must be assembled from the premises'
    // derivatives per the corresponding Fig. 4 transformation.
    let expected_derivative = assemble(original, d, param, ancilla)?;
    if d.conclusion.derivative != expected_derivative {
        return Err(LogicError {
            rule: d.rule,
            message: "conclusion derivative is not the one prescribed by the rule".into(),
        });
    }
    Ok(())
}

/// Reassembles the conclusion derivative from premise derivatives.
fn assemble(
    original: &Stmt,
    d: &Derivation,
    param: &str,
    ancilla: &Var,
) -> Result<Stmt, LogicError> {
    Ok(match original {
        Stmt::Abort { .. } | Stmt::Skip { .. } | Stmt::Init { .. } => {
            abort_ext(original, ancilla)
        }
        Stmt::Unitary { gate, .. } => {
            if gate.uses_param(param) {
                match gate {
                    // Rσ / Rσ⊗σ (Fig. 5) and their iterated controlled forms
                    // (the higher-order extension; see transform.rs).
                    Gate::Rot { .. }
                    | Gate::Coupling { .. }
                    | Gate::CRot { .. }
                    | Gate::CCoupling { .. } => {
                        transform(original, param, ancilla).map_err(|e| LogicError {
                            rule: Rule::RotCouple,
                            message: e.to_string(),
                        })?
                    }
                    Gate::H | Gate::X | Gate::Y | Gate::Z | Gate::Cnot => {
                        unreachable!("fixed gates never use a parameter")
                    }
                }
            } else {
                abort_ext(original, ancilla)
            }
        }
        Stmt::Seq(a, b) => {
            let da = d.premises[0].conclusion.derivative.clone();
            let db = d.premises[1].conclusion.derivative.clone();
            Stmt::Sum(
                Box::new(Stmt::Seq(a.clone(), Box::new(db))),
                Box::new(Stmt::Seq(Box::new(da), b.clone())),
            )
        }
        Stmt::Sum(..) => {
            let da = d.premises[0].conclusion.derivative.clone();
            let db = d.premises[1].conclusion.derivative.clone();
            Stmt::Sum(Box::new(da), Box::new(db))
        }
        Stmt::Case { qs, .. } => Stmt::Case {
            qs: qs.clone(),
            arms: d
                .premises
                .iter()
                .map(|p| p.conclusion.derivative.clone())
                .collect(),
        },
        Stmt::While { .. } => {
            // While(T) is a macro: its derivative is the transformation of
            // the one-step unfolding (successive Case + Sequence uses).
            transform(&original.unfold_while_once(), param, ancilla).map_err(|e| LogicError {
                rule: Rule::WhileT,
                message: e.to_string(),
            })?
        }
    })
}

fn abort_ext(stmt: &Stmt, ancilla: &Var) -> Stmt {
    let mut vars = stmt.qvar();
    vars.insert(ancilla.clone());
    Stmt::abort(vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::parse_program;

    fn derive_src(src: &str, param: &str) -> (Derivation, Var) {
        let p = parse_program(src).unwrap();
        let a = crate::transform::fresh_ancilla(&p, param);
        (derive(&p, param, &a).unwrap(), a)
    }

    #[test]
    fn canonical_derivations_check() {
        for src in [
            "abort[q1]",
            "skip[q1]",
            "q1 := |0>",
            "q1 *= H",
            "q1 *= RX(t)",
            "q1, q2 *= RYY(t)",
            "q1 *= RX(t); q1 *= RY(t)",
            "case M[q1] = 0 -> q1 *= RX(t); q1 *= RY(t), 1 -> q1 *= RZ(t) end",
            "while[2] M[q1] = 1 do q1 *= RX(t) done",
            "q1 *= RX(t) + q1 *= RY(t)",
        ] {
            let (d, a) = derive_src(src, "t");
            check(&d, "t", &a).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn rules_match_statement_forms() {
        let cases = [
            ("abort[q1]", Rule::Abort),
            ("skip[q1]", Rule::Skip),
            ("q1 := |0>", Rule::Initialization),
            ("q1 *= H", Rule::TrivialUnitary),
            ("q1 *= RX(s)", Rule::TrivialUnitary), // wrong parameter → trivial
            ("q1 *= RX(t)", Rule::RotCouple),
            ("q1 *= RX(t); q1 *= RY(t)", Rule::Sequence),
            ("case M[q1] = 0 -> skip[q1], 1 -> skip[q1] end", Rule::Case),
            ("while[2] M[q1] = 1 do skip[q1] done", Rule::WhileT),
            ("skip[q1] + skip[q1]", Rule::SumComponent),
        ];
        for (src, rule) in cases {
            let (d, _) = derive_src(src, "t");
            assert_eq!(d.rule, rule, "{src}");
        }
    }

    #[test]
    fn derivation_judgement_matches_transformation() {
        let p = parse_program("q1 *= RX(t); q1 *= RY(t)").unwrap();
        let a = crate::transform::fresh_ancilla(&p, "t");
        let d = derive(&p, "t", &a).unwrap();
        let expected = transform(&p, "t", &a).unwrap();
        assert_eq!(d.conclusion.derivative, expected);
        assert_eq!(d.conclusion.original, p);
    }

    #[test]
    fn tampered_derivative_is_rejected() {
        let (mut d, a) = derive_src("q1 *= RX(t); q1 *= RY(t)", "t");
        // Swap the sum components: (∂S1;S2) + (S1;∂S2) instead of the
        // prescribed (S1;∂S2) + (∂S1;S2). Semantically equal, but not the
        // canonical rule instance.
        let Stmt::Sum(x, y) = d.conclusion.derivative.clone() else {
            panic!()
        };
        d.conclusion.derivative = Stmt::Sum(y, x);
        let err = check(&d, "t", &a).unwrap_err();
        assert!(err.message.contains("not the one prescribed"));
    }

    #[test]
    fn tampered_premise_subject_is_rejected() {
        let (mut d, a) = derive_src("q1 *= RX(t); q1 *= RY(t)", "t");
        d.premises.swap(0, 1);
        let err = check(&d, "t", &a).unwrap_err();
        assert!(err.message.contains("wrong sub-program"));
    }

    #[test]
    fn missing_premises_are_rejected() {
        let (mut d, a) = derive_src("q1 *= RX(t); q1 *= RY(t)", "t");
        d.premises.pop();
        let err = check(&d, "t", &a).unwrap_err();
        assert!(err.message.contains("premise"));
    }

    #[test]
    fn wrong_rule_label_is_rejected() {
        let (mut d, a) = derive_src("q1 *= RX(t)", "t");
        d.rule = Rule::Skip;
        let err = check(&d, "t", &a).unwrap_err();
        assert!(err.message.contains("does not apply"));
    }

    #[test]
    fn tree_measures() {
        let (d, _) = derive_src(
            "case M[q1] = 0 -> q1 *= RX(t); q1 *= RY(t), 1 -> q1 *= RZ(t) end",
            "t",
        );
        // Case → [Seq → [RX, RY], RZ]: 5 nodes, height 3.
        assert_eq!(d.size(), 5);
        assert_eq!(d.height(), 3);
    }

    #[test]
    fn render_shows_one_line_per_rule() {
        let (d, _) = derive_src("q1 *= RX(t); q1 *= RY(t)", "t");
        let text = d.render();
        assert_eq!(text.lines().count(), d.size());
        assert!(text.starts_with("[Sequence]"));
        assert!(text.contains("  [Rot-Couple]"));
    }

    #[test]
    fn while_premise_is_the_loop_body() {
        let (d, a) = derive_src("while[3] M[q1] = 1 do q1 *= RX(t) done", "t");
        assert_eq!(d.rule, Rule::WhileT);
        assert_eq!(d.premises.len(), 1);
        assert!(matches!(
            d.premises[0].conclusion.original,
            Stmt::Unitary { .. }
        ));
        check(&d, "t", &a).unwrap();
    }
}
