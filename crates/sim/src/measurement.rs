//! Quantum measurements `{Mm}` and branch enumeration.
//!
//! Section 2.3 of the paper: performing `{Mm}` on `ρ` yields outcome `m` with
//! probability `pm = tr(MmρMm†)` and post-measurement state `MmρMm†/pm`. The
//! language semantics works with the *unnormalised* branches `Em(ρ) = MmρMm†`
//! so probabilities ride along inside the partial density operators.

use crate::density::DensityMatrix;
use crate::state::StateVector;
use qdp_linalg::Matrix;

/// A quantum measurement: operators `{Mm}` on a subset of qubits with
/// `Σm Mm†Mm = I`.
///
/// # Examples
///
/// ```
/// use qdp_sim::{DensityMatrix, Measurement};
///
/// let m = Measurement::computational(vec![0]);
/// let rho = DensityMatrix::pure_zero(1);
/// let branches = m.branches(&rho);
/// assert!((branches[0].trace() - 1.0).abs() < 1e-12); // outcome 0 certain
/// assert!(branches[1].trace() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct Measurement {
    operators: Vec<Matrix>,
    targets: Vec<usize>,
}

/// One unnormalised branch of a pure-state measurement.
#[derive(Clone, Debug)]
pub struct MeasurementBranch {
    /// The measurement outcome index `m`.
    pub outcome: usize,
    /// The branch probability `pm` (relative to the incoming state's norm).
    pub probability: f64,
    /// The unnormalised post-measurement state `Mm|ψ⟩`.
    pub state: StateVector,
}

impl Measurement {
    /// Creates a measurement from explicit operators.
    ///
    /// # Panics
    ///
    /// Panics when dimensions are inconsistent or the completeness relation
    /// `Σ M†M = I` fails beyond `1e-8`.
    pub fn new(operators: Vec<Matrix>, targets: Vec<usize>) -> Self {
        assert!(!operators.is_empty(), "measurement needs at least one operator");
        let dim = 1usize << targets.len();
        let mut sum = Matrix::zeros(dim, dim);
        for m in &operators {
            assert!(
                m.rows() == dim && m.cols() == dim,
                "measurement operator must be {dim}x{dim}"
            );
            sum = &sum + &m.dagger().mul(m);
        }
        assert!(
            sum.approx_eq(&Matrix::identity(dim), 1e-8),
            "measurement operators must satisfy completeness Σ M†M = I"
        );
        Measurement { operators, targets }
    }

    /// The computational-basis measurement on `targets`: outcome `m` is the
    /// basis state `|m⟩` of the measured sub-register (target order gives
    /// bit significance, first target most significant).
    pub fn computational(targets: Vec<usize>) -> Self {
        let dim = 1usize << targets.len();
        let operators = (0..dim).map(|k| Matrix::basis_projector(dim, k)).collect();
        Measurement { operators, targets }
    }

    /// A two-outcome measurement `{M0, M1}` as used by `while` guards.
    ///
    /// # Panics
    ///
    /// Panics when completeness fails.
    pub fn two_outcome(m0: Matrix, m1: Matrix, targets: Vec<usize>) -> Self {
        Measurement::new(vec![m0, m1], targets)
    }

    /// Number of outcomes.
    pub fn num_outcomes(&self) -> usize {
        self.operators.len()
    }

    /// Borrows the measurement operators.
    pub fn operators(&self) -> &[Matrix] {
        &self.operators
    }

    /// Borrows the measured qubits.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// All unnormalised branches `Em(ρ) = MmρMm†` (the superoperators of the
    /// paper's operational semantics, Fig. 1a).
    pub fn branches(&self, rho: &DensityMatrix) -> Vec<DensityMatrix> {
        self.operators
            .iter()
            .map(|m| {
                let mut branch = rho.clone();
                branch.apply_conjugation(m, &self.targets);
                branch
            })
            .collect()
    }

    /// One branch `Em(ρ)`.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` is out of range.
    pub fn branch(&self, rho: &DensityMatrix, outcome: usize) -> DensityMatrix {
        let mut out = rho.clone();
        out.apply_conjugation(&self.operators[outcome], &self.targets);
        out
    }

    /// All branches of a pure state, with probabilities.
    pub fn branches_pure(&self, psi: &StateVector) -> Vec<MeasurementBranch> {
        self.operators
            .iter()
            .enumerate()
            .map(|(outcome, m)| {
                let state = psi.with_gate(m, &self.targets);
                MeasurementBranch {
                    outcome,
                    probability: state.norm_sqr(),
                    state,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computational_measurement_is_complete() {
        // Constructor would panic otherwise; exercise multi-qubit case.
        let m = Measurement::computational(vec![0, 2]);
        assert_eq!(m.num_outcomes(), 4);
    }

    #[test]
    fn branch_probabilities_sum_to_one() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        let branches = m.branches_pure(&psi);
        let total: f64 = branches.iter().map(|b| b.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((branches[0].probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measuring_bell_state_correlates_qubits() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        for b in m.branches_pure(&psi) {
            if b.probability > 0.0 {
                // After observing qubit 0 = m, qubit 1 must equal m too.
                let normalised = {
                    let mut s = b.state.clone();
                    s.scale(qdp_linalg::C64::real(1.0 / b.probability.sqrt()));
                    s
                };
                assert_eq!(normalised.classical_bit(1), Some(b.outcome == 1));
            }
        }
    }

    #[test]
    fn density_branches_match_pure_branches() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[1]);
        let rho = DensityMatrix::from_pure(&psi);
        let m = Measurement::computational(vec![1]);
        let dense = m.branches(&rho);
        let pure = m.branches_pure(&psi);
        for (d, p) in dense.iter().zip(&pure) {
            assert!((d.trace() - p.probability).abs() < 1e-12);
            assert!(d.approx_eq(&DensityMatrix::from_pure(&p.state), 1e-12));
        }
    }

    #[test]
    fn branches_preserve_total_trace() {
        let mut rho = DensityMatrix::pure_zero(3);
        rho.apply_unitary(&Matrix::hadamard(), &[0]);
        rho.apply_unitary(&Matrix::cnot(), &[0, 2]);
        let m = Measurement::computational(vec![0, 2]);
        let total: f64 = m.branches(&rho).iter().map(|b| b.trace()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn incomplete_operators_panic() {
        let _ = Measurement::new(vec![Matrix::basis_projector(2, 0)], vec![0]);
    }

    #[test]
    fn two_outcome_guard_measurement() {
        let m = Measurement::two_outcome(
            Matrix::basis_projector(2, 0),
            Matrix::basis_projector(2, 1),
            vec![1],
        );
        let rho = DensityMatrix::pure_zero(2);
        assert!((m.branch(&rho, 0).trace() - 1.0).abs() < 1e-12);
        assert!(m.branch(&rho, 1).trace() < 1e-12);
    }
}
