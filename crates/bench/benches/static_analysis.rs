//! Timing of the compile-time phase (E1/E2 support): code transformation
//! plus compilation on the Table 2 benchmark instances, and the resource
//! analysis itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qdp_ad::{differentiate, occurrence_count};
use qdp_vqc::families::{paper_instances, THETA};
use std::hint::black_box;
use std::time::Duration;

fn bench_differentiate(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform_compile");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for name in ["QNN_{M,i}", "VQE_{M,i}", "QAOA_{M,i}", "QNN_{L,i}", "QNN_{M,w}"] {
        let config = paper_instances()
            .into_iter()
            .find(|c| c.name == name)
            .expect("known instance");
        let program = config.build();
        group.bench_function(name, |b| {
            b.iter_batched(
                || program.clone(),
                |p| black_box(differentiate(&p, THETA).expect("differentiable")),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_occurrence_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("occurrence_count");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let config = paper_instances()
        .into_iter()
        .find(|c| c.name == "QNN_{L,i}")
        .expect("known instance");
    let program = config.build();
    group.bench_function("QNN_{L,i}", |b| {
        b.iter(|| black_box(occurrence_count(black_box(&program), THETA)))
    });
    group.finish();
}

criterion_group!(benches, bench_differentiate, bench_occurrence_count);
criterion_main!(benches);
