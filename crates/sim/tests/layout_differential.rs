//! Split-plane (SoA) vs interleaved (AoS) layout differential suite — the
//! re-pinned determinism contract of the PR-7 layout change.
//!
//! Every test builds the **same arithmetic twice**: once through the
//! split-plane production paths (`StateVector` / `BatchedStates` planes,
//! `*_planes_*` measurement and read-out forms, the batched `ShotEngine`
//! executors) and once through the retained AoS oracle forms
//! (`kernels::apply_matrix` on `Vec<C64>`, `branch_probabilities_into`,
//! `collapse_amps_into`, `expectation_amps`, `sample_with_draw`), then
//! compares **f64 bit patterns**, not approximate values. Randomized
//! branching programs (n ≤ 8, `case` forks, `q := |0⟩` resets — the shapes
//! derivative lowering emits as outcome multisets) run over batches of
//! 1 / 2 / 16 / 33 rows under forced 1 / 2 / 8 worker threads.
//!
//! The AoS replays here deliberately re-transcribe the lane-split
//! reduction contract (`crates/sim/src/lanes.rs`) and the serial collapse
//! primitive (`collapse_with_draw`) from scratch instead of calling them,
//! so a regression in either the plane paths *or* the shared primitives
//! shows up as a bit mismatch against an independent implementation.

use qdp_linalg::{C64, Matrix};
use qdp_sim::kernels::apply_matrix;
use qdp_sim::{
    BatchedStates, Measurement, Observable, ProjectiveObservable, ShotEngine, ShotSampler,
    StateVector, TrajProgram, BRANCH_PRUNE,
};
use std::sync::Mutex;

/// Serializes the thread-override tests in this binary: `set_max_threads`
/// requires a quiesced process (see `block_measurement_differential.rs`).
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const BATCH_SIZES: [usize; 4] = [1, 2, 16, 33];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

// ---------------------------------------------------------------------------
// Deterministic randomness (qdp-sim has no dev-dependency on `rand`).
// ---------------------------------------------------------------------------

/// Knuth MMIX LCG — the same generator the `lanes` unit tests use.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Uniform in `[0, 1)` from the top 53 bits.
fn uniform(state: &mut u64) -> f64 {
    (lcg(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform in `[-1, 1)`.
fn signed_unit(state: &mut u64) -> f64 {
    2.0 * uniform(state) - 1.0
}

/// A random normalized `n`-qubit state.
fn random_state(n: usize, rng: &mut u64) -> Vec<C64> {
    let mut amps: Vec<C64> = (0..1usize << n)
        .map(|_| C64::new(signed_unit(rng), signed_unit(rng)))
        .collect();
    let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a = C64::new(a.re / norm, a.im / norm);
    }
    amps
}

// ---------------------------------------------------------------------------
// Bit-pattern views.
// ---------------------------------------------------------------------------

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn amp_bits(amps: &[C64]) -> Vec<(u64, u64)> {
    amps.iter().map(|a| (a.re.to_bits(), a.im.to_bits())).collect()
}

fn plane_bits(re: &[f64], im: &[f64]) -> Vec<(u64, u64)> {
    re.iter().zip(im).map(|(r, i)| (r.to_bits(), i.to_bits())).collect()
}

// ---------------------------------------------------------------------------
// Independent AoS transcriptions of the shared primitives.
// ---------------------------------------------------------------------------

/// The lane-split norm reduction (`lanes::sum_norm_sqr`) re-transcribed on
/// interleaved amplitudes: lane `i % 4`, per-element fold, combine
/// `(p0 + p1) + (p2 + p3)`.
fn norm_sqr_aos(amps: &[C64]) -> f64 {
    let mut acc = [0.0f64; 4];
    for (i, a) in amps.iter().enumerate() {
        acc[i % 4] += a.re * a.re + a.im * a.im;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// `StateVector::scale` on interleaved amplitudes — the full complex
/// multiply per element, as the plane path transcribes it.
fn scale_aos(amps: &mut [C64], s: C64) {
    for a in amps.iter_mut() {
        *a *= s;
    }
}

/// `collapse_with_draw` re-transcribed on interleaved amplitudes through
/// the AoS oracle forms: identical selection walk, identical rescale and
/// renormalization arithmetic, identical slack fallback.
fn collapse_with_draw_aos(
    u: f64,
    n: usize,
    amps: &[C64],
    meas: &Measurement,
) -> (usize, Vec<C64>) {
    let total = norm_sqr_aos(amps);
    assert!(total > 1e-300, "cannot measure a zero-norm state");
    let probs = meas.branch_probabilities_amps(n, amps);
    let mut out = Vec::new();
    let mut r: f64 = u * total;
    for (outcome, &p) in probs.iter().enumerate() {
        r -= p;
        if r <= 0.0 {
            meas.collapse_amps_into(n, amps, outcome, &mut out);
            if p > 0.0 {
                scale_aos(&mut out, C64::real((total / p).sqrt().min(1e150)));
                let norm = norm_sqr_aos(&out).sqrt();
                if norm > 0.0 {
                    scale_aos(&mut out, C64::real(total.sqrt() / norm));
                }
            }
            return (outcome, out);
        }
    }
    let outcome = (0..probs.len())
        .rev()
        .find(|&m| probs[m] > 0.0)
        .expect("no branch has support");
    meas.collapse_amps_into(n, amps, outcome, &mut out);
    let norm = norm_sqr_aos(&out).sqrt();
    if norm > 0.0 {
        scale_aos(&mut out, C64::real(total.sqrt() / norm));
    }
    (outcome, out)
}

// ---------------------------------------------------------------------------
// Random branching programs with an AoS mirror for independent replay.
// ---------------------------------------------------------------------------

/// One gate of a mirror program.
#[derive(Clone)]
struct MirrorGate {
    matrix: Matrix,
    targets: Vec<usize>,
}

/// The mirror of a `TrajProgram`: the same ops, held where the test can
/// walk them (arm bodies are flat gate lists, so replay needs no
/// continuation stack).
enum MirrorOp {
    Gate(MirrorGate),
    /// `q := |0⟩`: measure computationally, flip with `X` on outcome 1.
    Init(usize),
    Case {
        meas: Measurement,
        arms: Vec<Vec<MirrorGate>>,
    },
}

fn random_gate(n: usize, rng: &mut u64) -> MirrorGate {
    let q = (lcg(rng) as usize) % n;
    let theta = std::f64::consts::PI * signed_unit(rng);
    match lcg(rng) % 6 {
        0 => MirrorGate { matrix: Matrix::hadamard(), targets: vec![q] },
        1 => MirrorGate { matrix: Matrix::rotation_x(theta), targets: vec![q] },
        2 => MirrorGate { matrix: Matrix::rotation_y(theta), targets: vec![q] },
        3 => MirrorGate { matrix: Matrix::rotation_z(theta), targets: vec![q] },
        4 if n >= 2 => {
            let mut c = (lcg(rng) as usize) % n;
            if c == q {
                c = (c + 1) % n;
            }
            MirrorGate { matrix: Matrix::cnot(), targets: vec![c, q] }
        }
        _ => MirrorGate { matrix: Matrix::pauli_x(), targets: vec![q] },
    }
}

/// A random 1-qubit measurement: computational, or a rotated two-outcome
/// general measurement `Mk = Pk · R†` (complete: `Σ Mk†Mk = R·I·R† = I`),
/// which forces the general operator-application probability path.
fn random_meas(n: usize, rng: &mut u64) -> Measurement {
    let q = (lcg(rng) as usize) % n;
    if lcg(rng).is_multiple_of(2) {
        Measurement::computational(vec![q])
    } else {
        let r = Matrix::rotation_y(std::f64::consts::PI * signed_unit(rng));
        let rd = r.dagger();
        let m0 = Matrix::basis_projector(2, 0).mul(&rd);
        let m1 = Matrix::basis_projector(2, 1).mul(&rd);
        Measurement::two_outcome(m0, m1, vec![q])
    }
}

/// Builds a random branching program and its mirror: gates, `case` forks
/// with per-arm gate bodies, and `q := |0⟩` resets — the outcome-multiset
/// shapes the derivative lowering produces.
fn random_program(n: usize, len: usize, rng: &mut u64) -> (TrajProgram, Vec<MirrorOp>) {
    let mut prog = TrajProgram::new();
    let mut mirror = Vec::new();
    for _ in 0..len {
        match lcg(rng) % 8 {
            0..=4 => {
                let g = random_gate(n, rng);
                prog.push_gate(g.matrix.clone(), g.targets.clone());
                mirror.push(MirrorOp::Gate(g));
            }
            5 => {
                let q = (lcg(rng) as usize) % n;
                prog.push_init(q);
                mirror.push(MirrorOp::Init(q));
            }
            _ => {
                let meas = random_meas(n, rng);
                let arms: Vec<Vec<MirrorGate>> = (0..meas.num_outcomes())
                    .map(|_| {
                        (0..lcg(rng) % 3).map(|_| random_gate(n, rng)).collect()
                    })
                    .collect();
                let traj_arms: Vec<TrajProgram> = arms
                    .iter()
                    .map(|body| {
                        let mut arm = TrajProgram::new();
                        for g in body {
                            arm.push_gate(g.matrix.clone(), g.targets.clone());
                        }
                        arm
                    })
                    .collect();
                prog.push_case(meas.clone(), traj_arms);
                mirror.push(MirrorOp::Case { meas, arms });
            }
        }
    }
    (prog, mirror)
}

/// Serial AoS replay of one sampled trajectory: `kernels::apply_matrix`
/// for every gate, [`collapse_with_draw_aos`] for every measurement,
/// drawing from the same per-row stream the engine uses.
fn replay_sampled_aos(
    n: usize,
    input: &[C64],
    mirror: &[MirrorOp],
    sampler: &mut ShotSampler,
) -> (Vec<C64>, Vec<usize>) {
    let mut amps = input.to_vec();
    let mut outcomes = Vec::new();
    for op in mirror {
        match op {
            MirrorOp::Gate(g) => apply_matrix(&mut amps, n, &g.matrix, &g.targets),
            MirrorOp::Init(q) => {
                let meas = Measurement::computational(vec![*q]);
                let (outcome, collapsed) =
                    collapse_with_draw_aos(sampler.next_uniform(), n, &amps, &meas);
                amps = collapsed;
                outcomes.push(outcome);
                if outcome == 1 {
                    apply_matrix(&mut amps, n, &Matrix::pauli_x(), &[*q]);
                }
            }
            MirrorOp::Case { meas, arms } => {
                let (outcome, collapsed) =
                    collapse_with_draw_aos(sampler.next_uniform(), n, &amps, meas);
                amps = collapsed;
                outcomes.push(outcome);
                for g in &arms[outcome] {
                    apply_matrix(&mut amps, n, &g.matrix, &g.targets);
                }
            }
        }
    }
    (amps, outcomes)
}

/// Serial AoS branch enumeration of the **exact** weighted sweep: every
/// measurement forks into all outcomes with the weights riding in the
/// (un-rescaled) collapsed amplitudes, branches at weight ≤
/// [`BRANCH_PRUNE`] are dropped, and each surviving leaf contributes
/// `⟨ψleaf|O|ψleaf⟩` through the AoS expectation oracle.
fn enumerate_exact_aos(n: usize, amps: &[C64], mirror: &[MirrorOp], obs: &Observable) -> f64 {
    fn walk(n: usize, amps: Vec<C64>, ops: &[MirrorOp], obs: &Observable) -> f64 {
        match ops.first() {
            None => obs.expectation_amps(&amps),
            Some(MirrorOp::Gate(g)) => {
                let mut amps = amps;
                apply_matrix(&mut amps, n, &g.matrix, &g.targets);
                walk(n, amps, &ops[1..], obs)
            }
            Some(MirrorOp::Init(q)) => {
                let meas = Measurement::computational(vec![*q]);
                let mut sum = 0.0;
                for outcome in 0..meas.num_outcomes() {
                    let mut branch = Vec::new();
                    meas.collapse_amps_into(n, &amps, outcome, &mut branch);
                    if norm_sqr_aos(&branch) <= BRANCH_PRUNE {
                        continue;
                    }
                    if outcome == 1 {
                        apply_matrix(&mut branch, n, &Matrix::pauli_x(), &[*q]);
                    }
                    sum += walk(n, branch, &ops[1..], obs);
                }
                sum
            }
            Some(MirrorOp::Case { meas, arms }) => {
                let mut sum = 0.0;
                for (outcome, arm) in arms.iter().enumerate() {
                    let mut branch = Vec::new();
                    meas.collapse_amps_into(n, &amps, outcome, &mut branch);
                    if norm_sqr_aos(&branch) <= BRANCH_PRUNE {
                        continue;
                    }
                    for g in arm {
                        apply_matrix(&mut branch, n, &g.matrix, &g.targets);
                    }
                    sum += walk(n, branch, &ops[1..], obs);
                }
                sum
            }
        }
    }
    walk(n, amps.to_vec(), mirror, obs)
}

// ---------------------------------------------------------------------------
// 1. Per-row measurement paths: plane forms vs AoS oracle forms, bitwise.
// ---------------------------------------------------------------------------

#[test]
fn per_row_measurement_paths_match_aos_oracle_bitwise() {
    let mut rng = 0x1517_u64;
    for n in [1usize, 2, 4, 5, 8] {
        for case in 0..4 {
            let amps = random_state(n, &mut rng);
            let psi = StateVector::from_amplitudes(n, amps.clone());
            let (re, im) = psi.planes();

            let mut measurements = vec![Measurement::computational(vec![
                (lcg(&mut rng) as usize) % n,
            ])];
            if n >= 2 {
                let q0 = (lcg(&mut rng) as usize) % n;
                let q1 = (q0 + 1 + (lcg(&mut rng) as usize) % (n - 1)) % n;
                measurements.push(Measurement::computational(vec![q0, q1]));
            }
            measurements.push(random_meas(n, &mut rng));

            for meas in &measurements {
                // Probabilities: pure / planes-into vs the AoS oracle forms.
                let p_pure = meas.branch_probabilities_pure(&psi);
                let p_amps = meas.branch_probabilities_amps(n, &amps);
                assert_eq!(bits(&p_pure), bits(&p_amps), "n={n} case={case}");

                let mut p_planes = Vec::new();
                meas.branch_probabilities_planes_into(n, re, im, &mut p_planes);
                let mut p_aos = Vec::new();
                meas.branch_probabilities_into(n, &amps, &mut p_aos);
                assert_eq!(bits(&p_planes), bits(&p_aos), "n={n} case={case}");

                // Collapse: pure / planes-into vs the AoS oracle form.
                for outcome in 0..meas.num_outcomes() {
                    let collapsed = meas.collapse_pure(&psi, outcome);
                    let (cre, cim) = collapsed.planes();

                    let mut aos = Vec::new();
                    meas.collapse_amps_into(n, &amps, outcome, &mut aos);
                    assert_eq!(
                        plane_bits(cre, cim),
                        amp_bits(&aos),
                        "collapse n={n} case={case} outcome={outcome}"
                    );

                    let (mut pre, mut pim) = (Vec::new(), Vec::new());
                    meas.collapse_planes_into(n, re, im, outcome, &mut pre, &mut pim);
                    assert_eq!(
                        plane_bits(&pre, &pim),
                        amp_bits(&aos),
                        "collapse_planes n={n} case={case} outcome={outcome}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Expectations: plane form vs AoS oracle form, bitwise.
// ---------------------------------------------------------------------------

#[test]
fn expectation_planes_matches_aos_oracle_bitwise() {
    let mut rng = 0x2329_u64;
    for n in [1usize, 2, 4, 5, 8] {
        let q = (lcg(&mut rng) as usize) % n;
        let r = Matrix::rotation_y(std::f64::consts::PI * signed_unit(&mut rng));
        let rotated_z = r.mul(&Matrix::pauli_z()).mul(&r.dagger());
        let observables = [
            Observable::pauli_z(n, q),
            Observable::projector_one(n, q),
            Observable::new(n, vec![q], rotated_z),
        ];
        for case in 0..4 {
            let amps = random_state(n, &mut rng);
            let psi = StateVector::from_amplitudes(n, amps.clone());
            let (re, im) = psi.planes();
            for obs in &observables {
                let via_pure = obs.expectation_pure(&psi);
                let via_planes = obs.expectation_planes(re, im);
                let via_amps = obs.expectation_amps(&amps);
                assert_eq!(via_pure.to_bits(), via_amps.to_bits(), "n={n} case={case}");
                assert_eq!(via_planes.to_bits(), via_amps.to_bits(), "n={n} case={case}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Projective read-out: plane probability/sampling paths vs AoS, bitwise.
// ---------------------------------------------------------------------------

#[test]
fn readout_probabilities_and_draws_match_aos_bitwise() {
    let mut rng = 0x3147_u64;
    for n in [2usize, 4, 8] {
        let q = (lcg(&mut rng) as usize) % n;
        for obs in [Observable::pauli_z(n, q), Observable::projector_one(n, q)] {
            // `new` takes the diagonal fast path; `general` the reference
            // expectation path — both must agree across layouts.
            for readout in [ProjectiveObservable::new(&obs), ProjectiveObservable::general(&obs)] {
                let amps = random_state(n, &mut rng);
                let psi = StateVector::from_amplitudes(n, amps.clone());
                let (re, im) = psi.planes();

                let mut p_aos = Vec::new();
                readout.row_probabilities_into(&amps, &mut p_aos);
                let mut p_planes = Vec::new();
                readout.row_probabilities_planes_into(re, im, &mut p_planes);
                assert_eq!(bits(&p_planes), bits(&p_aos), "n={n} q={q}");

                let total = norm_sqr_aos(&amps);
                assert_eq!(total.to_bits(), psi.norm_sqr().to_bits(), "n={n} q={q}");
                for step in 0..=20 {
                    let u = step as f64 / 20.0;
                    let via_aos = readout.sample_with_draw(u, total, &amps);
                    let via_planes = readout.sample_with_draw_planes(u, total, re, im);
                    assert_eq!(
                        via_planes.to_bits(),
                        via_aos.to_bits(),
                        "n={n} q={q} u={u}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Exact weighted sweep: thread-count and batch-composition invariance
//    (bitwise), and agreement with independent per-row AoS enumeration.
// ---------------------------------------------------------------------------

#[test]
fn exact_sweep_invariant_across_threads_and_batches_and_matches_aos_enumeration() {
    let _guard = serialized();
    let mut rng = 0x4717_u64;
    for (n, len) in [(2usize, 6usize), (4, 8), (5, 8), (8, 6)] {
        let (prog, mirror) = random_program(n, len, &mut rng);
        let engine = ShotEngine::new(prog);
        let obs = Observable::pauli_z(n, (lcg(&mut rng) as usize) % n);

        let rows: Vec<Vec<C64>> = (0..*BATCH_SIZES.iter().max().expect("non-empty"))
            .map(|_| random_state(n, &mut rng))
            .collect();

        // Pin from the largest batch so every smaller batch is a prefix.
        let mut pinned: Option<Vec<u64>> = None;
        for &batch in BATCH_SIZES.iter().rev() {
            let states: Vec<StateVector> = rows[..batch]
                .iter()
                .map(|amps| StateVector::from_amplitudes(n, amps.clone()))
                .collect();
            for &threads in &THREAD_COUNTS {
                qdp_par::set_max_threads(threads);
                let out = engine.expectation_sweep(BatchedStates::from_states(&states), &obs);
                qdp_par::set_max_threads(0);
                assert_eq!(out.len(), batch);
                // Row r's bits must not depend on thread count or on which
                // batch it rides in.
                let out_bits = bits(&out);
                match &pinned {
                    Some(first) => assert_eq!(
                        out_bits,
                        first[..batch],
                        "n={n} batch={batch} threads={threads}"
                    ),
                    None => pinned = Some(out_bits.clone()),
                }
            }
        }

        // Independent per-row AoS enumeration agrees to well below 1e-12
        // (the sweep fuses 1q gates, which only moves rounding).
        let pinned = pinned.expect("at least one batch ran");
        for (r, amps) in rows.iter().enumerate() {
            let reference = enumerate_exact_aos(n, amps, &mirror, &obs);
            let got = f64::from_bits(pinned[r]);
            assert!(
                (got - reference).abs() <= 1e-12,
                "n={n} row={r}: sweep {got} vs AoS enumeration {reference}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 5. Sampled batched executor vs fully serial AoS replay, bitwise.
// ---------------------------------------------------------------------------

#[test]
fn sampled_run_matches_serial_aos_replay_bitwise() {
    let _guard = serialized();
    let mut rng = 0x5923_u64;
    for (n, len, seed) in [(2usize, 6usize, 11u64), (4, 8, 13), (5, 8, 17), (8, 6, 19)] {
        let (prog, mirror) = random_program(n, len, &mut rng);
        let engine = ShotEngine::new(prog);

        let rows: Vec<Vec<C64>> = (0..*BATCH_SIZES.iter().max().expect("non-empty"))
            .map(|_| random_state(n, &mut rng))
            .collect();

        for &batch in &BATCH_SIZES {
            let states: Vec<StateVector> = rows[..batch]
                .iter()
                .map(|amps| StateVector::from_amplitudes(n, amps.clone()))
                .collect();
            for &threads in &THREAD_COUNTS {
                qdp_par::set_max_threads(threads);
                let mut samplers: Vec<ShotSampler> =
                    (0..batch).map(|r| ShotSampler::derived(seed, r as u64)).collect();
                let out =
                    engine.run(BatchedStates::from_states(&states), &mut samplers);
                qdp_par::set_max_threads(0);
                assert_eq!(out.len(), batch);

                for (r, row) in out.iter().enumerate() {
                    let mut replay_sampler = ShotSampler::derived(seed, r as u64);
                    let (want_amps, want_outcomes) =
                        replay_sampled_aos(n, &rows[r], &mirror, &mut replay_sampler);
                    assert_eq!(
                        row.outcomes, want_outcomes,
                        "n={n} batch={batch} threads={threads} row={r}"
                    );
                    let state = row
                        .state
                        .as_ref()
                        .expect("no aborts in generated programs");
                    let (sre, sim) = state.planes();
                    assert_eq!(
                        plane_bits(sre, sim),
                        amp_bits(&want_amps),
                        "n={n} batch={batch} threads={threads} row={r}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 6. Signed zeros: the projector collapse writes `re·0.0` / `im·0.0` into
//    non-members, so negative components leave −0.0 — identical bits in
//    both layouts.
// ---------------------------------------------------------------------------

#[test]
fn collapse_preserves_signed_zero_bits_across_layouts() {
    let n = 2;
    let amps = vec![
        C64::new(-0.5, 0.5),
        C64::new(0.5, -0.5),
        C64::new(-0.5, -0.5),
        C64::new(0.5, 0.5),
    ];
    let psi = StateVector::from_amplitudes(n, amps.clone());
    let meas = Measurement::computational(vec![0]);

    for outcome in 0..2 {
        let collapsed = meas.collapse_pure(&psi, outcome);
        let mut aos = Vec::new();
        meas.collapse_amps_into(n, &amps, outcome, &mut aos);

        let (cre, cim) = collapsed.planes();
        assert_eq!(plane_bits(cre, cim), amp_bits(&aos), "outcome={outcome}");

        // Each outcome zeroes two amplitudes with a negative component:
        // the planes must carry actual −0.0 bits, not +0.0.
        let neg_zeros = cre
            .iter()
            .chain(cim.iter())
            .filter(|x| **x == 0.0 && x.is_sign_negative())
            .count();
        assert!(
            neg_zeros >= 2,
            "outcome={outcome}: expected −0.0 non-members, planes {cre:?} / {cim:?}"
        );

        // And a full draw-collapse round-trip (rescale included) keeps the
        // layouts bit-identical on this signed-zero-heavy state.
        let (sel_plane, state) = qdp_sim::collapse_with_draw(0.3, &psi, &meas);
        let (sel_aos, replay) = collapse_with_draw_aos(0.3, n, &amps, &meas);
        assert_eq!(sel_plane, sel_aos);
        let (rre, rim) = state.planes();
        assert_eq!(plane_bits(rre, rim), amp_bits(&replay));
    }
}

// ---------------------------------------------------------------------------
// 7. Explicit SIMD tiers (`qdp_sim::simd`) vs the scalar plane kernels vs
//    the AoS oracle — bitwise, across every dispatch class (dense 1q,
//    diagonal, block-diagonal, 2q/kq dense), every orbit shape (`mask = 1`
//    deinterleave, top-bit split, interior strides, scalar-excluded
//    `mask = 2` and short-run cases), and forced 1 / 2 / 8 worker threads.
// ---------------------------------------------------------------------------

use qdp_sim::simd::{self, SimdTier};

/// Runs `f` with the SIMD tier capped at `cap`, restoring the previous cap
/// afterwards. Callers hold the [`serialized`] guard: the cap is process
/// state, like the thread override.
fn with_tier_cap<T>(cap: SimdTier, f: impl FnOnce() -> T) -> T {
    let prev = simd::tier_cap();
    simd::set_tier_cap(cap);
    let out = f();
    simd::set_tier_cap(prev);
    out
}

/// The vector tiers this machine can actually run. May be empty on hosts
/// without AVX2+FMA — the suite then degenerates to pinning the scalar
/// plane kernels against the AoS oracle, which still exercises the
/// dispatch plumbing end to end (that is exactly the CI baseline leg).
fn vector_tiers() -> Vec<SimdTier> {
    [SimdTier::Avx2, SimdTier::Avx512]
        .into_iter()
        .filter(|&t| t <= simd::detected_tier())
        .collect()
}

/// `[[I, 0], [0, u]]` — the block-diagonal (controlled-`u`) 4×4.
fn controlled(u: &Matrix) -> Matrix {
    let mut m = Matrix::identity(4);
    for r in 0..2 {
        for c in 0..2 {
            m.set(2 + r, 2 + c, u.get(r, c));
        }
    }
    m
}

/// Gate × target cases covering every SIMD dispatch class and chain
/// variant on an `n`-qubit register, plus the deliberately-scalar shapes
/// (`mask = 2`, short 2q/kq runs, identity-diagonal skip) so the dispatch
/// boundaries themselves are pinned.
fn simd_gate_cases(n: usize) -> Vec<(&'static str, Matrix, Vec<usize>)> {
    let th = 0.7368_f64;
    // Dense 2×2 with all eight components nonzero — the Full chain.
    let dense_full = Matrix::rotation_z(1.1).mul(&Matrix::rotation_x(th));
    let one_q_targets = [
        ("mask1", n - 1),
        ("mask2", n - 2), // scalar-excluded stride-2 shape
        ("mid", n / 2),
        ("top", 0),
    ];
    let mut cases: Vec<(&'static str, Matrix, Vec<usize>)> = Vec::new();
    for &(_, t) in &one_q_targets {
        cases.push(("dense-real-h", Matrix::hadamard(), vec![t]));
        cases.push(("dense-cross-rx", Matrix::rotation_x(th), vec![t]));
        cases.push(("dense-full", dense_full.clone(), vec![t]));
        cases.push(("diag-complex-rz", Matrix::rotation_z(th), vec![t]));
        cases.push((
            "diag-real",
            Matrix::diagonal(&[C64::real(0.6), C64::real(-0.8)]),
            vec![t],
        ));
        // `d0 = 1` keeps the scalar identity-run skip: not vectorizable.
        cases.push((
            "diag-phase",
            Matrix::diagonal(&[C64::ONE, C64::new(th.cos(), th.sin())]),
            vec![t],
        ));
    }
    // Block-diagonal: tmask = 1 segment sweep, cmask < tmask and
    // cmask > tmask general shapes, real (CNOT) and complex chains.
    cases.push(("cnot-tmask1", Matrix::cnot(), vec![0, n - 1]));
    cases.push(("cnot-cmask-lt-tmask", Matrix::cnot(), vec![n - 1, 0]));
    cases.push(("cnot-interior", Matrix::cnot(), vec![3, 7]));
    cases.push(("ctrl-rx-tmask1", controlled(&Matrix::rotation_x(th)), vec![2, n - 1]));
    cases.push(("ctrl-full-interior", controlled(&dense_full), vec![2, 8]));
    // Dense 2q: contiguous-run kernel (b_lo ≥ 2) and the short-run
    // scalar shape (b_lo < 2).
    cases.push((
        "2q-dense-rxx",
        Matrix::coupling_rotation(qdp_linalg::Pauli::X, th),
        vec![3, 7],
    ));
    cases.push((
        "2q-dense-short-run",
        Matrix::coupling_rotation(qdp_linalg::Pauli::Y, th),
        vec![n - 2, n - 1],
    ));
    // Dense k = 3: chunked-run kernel (bits[0] ≥ 2) and the short-run
    // scalar shape.
    let dense_3q = dense_full.kron(&Matrix::hadamard()).kron(&Matrix::rotation_x(0.3));
    cases.push(("3q-dense-runs", dense_3q.clone(), vec![2, 5, 9]));
    cases.push(("3q-dense-short-run", dense_3q, vec![2, 5, n - 1]));
    cases
}

#[test]
fn simd_tiers_match_scalar_planes_and_aos_oracle_bitwise() {
    let _guard = serialized();
    let n = 14; // 16384 amplitudes: at the parallel dispatch threshold
    let mut rng = 0x6121_u64;
    let amps = random_state(n, &mut rng);

    for (label, m, targets) in simd_gate_cases(n) {
        // Independent AoS oracle.
        let mut oracle = amps.clone();
        apply_matrix(&mut oracle, n, &m, &targets);
        let want = amp_bits(&oracle);

        // Scalar plane baseline (cap forces the portable fallback even
        // though this host may support wider tiers).
        let scalar_bits = with_tier_cap(SimdTier::Scalar, || {
            let mut psi = StateVector::from_amplitudes(n, amps.clone());
            psi.apply_gate(&m, &targets);
            let (re, im) = psi.planes();
            plane_bits(re, im)
        });
        assert_eq!(scalar_bits, want, "{label} {targets:?}: scalar planes vs AoS oracle");

        for tier in vector_tiers() {
            for &threads in &THREAD_COUNTS {
                qdp_par::set_max_threads(threads);
                let got = with_tier_cap(tier, || {
                    let mut psi = StateVector::from_amplitudes(n, amps.clone());
                    psi.apply_gate(&m, &targets);
                    let (re, im) = psi.planes();
                    plane_bits(re, im)
                });
                qdp_par::set_max_threads(0);
                assert_eq!(
                    got, scalar_bits,
                    "{label} {targets:?}: {tier:?} threads={threads} vs scalar planes"
                );
            }
        }
    }
}

#[test]
fn simd_tiers_match_scalar_on_batched_rows_bitwise() {
    let _guard = serialized();
    let n = 10;
    let mut rng = 0x6367_u64;
    let rows: Vec<Vec<C64>> = (0..16).map(|_| random_state(n, &mut rng)).collect();
    let states: Vec<StateVector> = rows
        .iter()
        .map(|amps| StateVector::from_amplitudes(n, amps.clone()))
        .collect();

    let gates: [(&str, Matrix, Vec<usize>); 4] = [
        ("h-mask1", Matrix::hadamard(), vec![n - 1]),
        ("rx-mid", Matrix::rotation_x(0.9), vec![4]),
        ("cnot", Matrix::cnot(), vec![1, n - 1]),
        (
            "rxx",
            Matrix::coupling_rotation(qdp_linalg::Pauli::X, 0.9),
            vec![2, 5],
        ),
    ];
    for (label, m, targets) in gates {
        let scalar_bits = with_tier_cap(SimdTier::Scalar, || {
            let mut batch = BatchedStates::from_states(&states);
            batch.apply_gate(&m, &targets);
            let (re, im) = batch.planes();
            plane_bits(re, im)
        });
        for tier in vector_tiers() {
            for &threads in &THREAD_COUNTS {
                qdp_par::set_max_threads(threads);
                let got = with_tier_cap(tier, || {
                    let mut batch = BatchedStates::from_states(&states);
                    batch.apply_gate(&m, &targets);
                    let (re, im) = batch.planes();
                    plane_bits(re, im)
                });
                qdp_par::set_max_threads(0);
                assert_eq!(got, scalar_bits, "{label}: {tier:?} threads={threads}");
            }
        }
    }
}

#[test]
fn simd_kernels_preserve_signed_zero_bits() {
    let _guard = serialized();
    let n = 10;
    let mut rng = 0x6521_u64;
    let mut amps = random_state(n, &mut rng);
    // Salt the state with negative zeros in both components: the kernels'
    // leading `0.0 +` flush and the untouched-segment copies must produce
    // the same bits in every tier.
    for i in (0..amps.len()).step_by(3) {
        amps[i] = C64::new(-0.0, amps[i].im);
    }
    for i in (1..amps.len()).step_by(5) {
        amps[i] = C64::new(amps[i].re, -0.0);
    }
    for i in (2..amps.len()).step_by(7) {
        amps[i] = C64::new(-0.0, -0.0);
    }

    let th = 0.7368_f64;
    let cases: [(&str, Matrix, Vec<usize>); 5] = [
        ("dense-full-mask1", Matrix::rotation_z(1.1).mul(&Matrix::rotation_x(th)), vec![n - 1]),
        ("dense-cross-mask1", Matrix::rotation_x(th), vec![n - 1]),
        ("dense-real-mid", Matrix::hadamard(), vec![4]),
        // CNOT: the control-clear half is never touched — its −0.0 bits
        // must ride through the masked copy unchanged.
        ("cnot-tmask1", Matrix::cnot(), vec![0, n - 1]),
        ("ctrl-rx-interior", controlled(&Matrix::rotation_x(th)), vec![1, 5]),
    ];
    for (label, m, targets) in cases {
        let scalar_bits = with_tier_cap(SimdTier::Scalar, || {
            let mut psi = StateVector::from_amplitudes(n, amps.clone());
            psi.apply_gate(&m, &targets);
            let (re, im) = psi.planes();
            plane_bits(re, im)
        });
        for tier in vector_tiers() {
            let got = with_tier_cap(tier, || {
                let mut psi = StateVector::from_amplitudes(n, amps.clone());
                psi.apply_gate(&m, &targets);
                let (re, im) = psi.planes();
                plane_bits(re, im)
            });
            assert_eq!(got, scalar_bits, "{label}: {tier:?} vs scalar, signed-zero state");
        }
        if label == "cnot-tmask1" {
            // Guard the guard: the untouched half really does carry −0.0.
            let kept = scalar_bits
                .iter()
                .filter(|(r, i)| *r == (-0.0f64).to_bits() || *i == (-0.0f64).to_bits())
                .count();
            assert!(kept > 0, "expected surviving −0.0 bits in the untouched half");
        }
    }
}

#[test]
fn simd_lane_reductions_match_scalar_bitwise() {
    let _guard = serialized();
    let n = 14; // long enough for the vector accumulator threshold
    let mut rng = 0x6733_u64;
    let amps = random_state(n, &mut rng);
    let psi = StateVector::from_amplitudes(n, amps);
    let (re, im) = psi.planes();

    let measurements = [
        Measurement::computational(vec![3]),
        Measurement::computational(vec![0, 7]),
        Measurement::computational(vec![n - 1]),
    ];
    let obs = Observable::pauli_z(n, 5);

    let scalar = with_tier_cap(SimdTier::Scalar, || {
        let mut probs = Vec::new();
        let mut all = vec![psi.norm_sqr(), obs.expectation_planes(re, im)];
        for meas in &measurements {
            let mut p = Vec::new();
            meas.branch_probabilities_planes_into(n, re, im, &mut p);
            probs.append(&mut p);
        }
        all.append(&mut probs);
        bits(&all)
    });
    for tier in vector_tiers() {
        for &threads in &THREAD_COUNTS {
            qdp_par::set_max_threads(threads);
            let got = with_tier_cap(tier, || {
                let mut probs = Vec::new();
                let mut all = vec![psi.norm_sqr(), obs.expectation_planes(re, im)];
                for meas in &measurements {
                    let mut p = Vec::new();
                    meas.branch_probabilities_planes_into(n, re, im, &mut p);
                    probs.append(&mut p);
                }
                all.append(&mut probs);
                bits(&all)
            });
            qdp_par::set_max_threads(0);
            assert_eq!(got, scalar, "lane reductions: {tier:?} threads={threads}");
        }
    }
}

#[test]
fn tier_capping_controls_active_dispatch() {
    let _guard = serialized();
    let prev = simd::tier_cap();
    simd::set_tier_cap(SimdTier::Scalar);
    assert_eq!(simd::active_tier(), SimdTier::Scalar, "scalar cap must mask all tiers");
    simd::set_tier_cap(SimdTier::Avx2);
    assert!(simd::active_tier() <= SimdTier::Avx2, "cap bounds the active tier");
    simd::set_tier_cap(SimdTier::Avx512);
    assert_eq!(
        simd::active_tier(),
        simd::detected_tier(),
        "an uncapping cap restores full detection"
    );
    simd::set_tier_cap(prev);
}
