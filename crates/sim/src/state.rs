//! Pure quantum states.

use crate::kernels::{apply_matrix_planes, planes_to_aos, qubit_bit};
use crate::lanes;
use qdp_linalg::{C64, Matrix};

/// A pure state `|ψ⟩` of an `n`-qubit register, possibly sub-normalised.
///
/// Sub-normalised states arise as measurement branches: the squared norm is
/// the probability of the branch (this mirrors the paper's use of *partial*
/// density operators to carry probabilities through the semantics).
///
/// # Storage
///
/// Amplitudes are stored **split-plane** (SoA): the real parts in one
/// contiguous `f64` plane, the imaginary parts in another, instead of an
/// interleaved `Vec<C64>`. Every hot loop then walks plain contiguous `f64`
/// streams — the shape both LLVM's loop vectorizer and the explicit
/// runtime-dispatched vector kernels in [`crate::simd`] consume directly
/// (the planes are handed to the AVX2/AVX-512 tiers without any gather or
/// repack). The layout is invisible at the public seam: gates, norms,
/// measurements and read-outs behave exactly as before, and
/// [`amplitudes`](Self::amplitudes) gathers an interleaved copy on demand
/// for oracle comparisons and interop.
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::StateVector;
///
/// let mut bell = StateVector::zero_state(2);
/// bell.apply_gate(&Matrix::hadamard(), &[0]);
/// bell.apply_gate(&Matrix::cnot(), &[0, 1]);
/// assert!((bell.probability_of(0b00) - 0.5).abs() < 1e-12);
/// assert!((bell.probability_of(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero_state(n_qubits: usize) -> Self {
        Self::basis_state(n_qubits, 0)
    }

    /// The computational basis state `|k⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `k >= 2ⁿ`.
    pub fn basis_state(n_qubits: usize, k: usize) -> Self {
        assert!(k < 1 << n_qubits, "basis index {k} out of range");
        let mut re = vec![0.0; 1 << n_qubits];
        let im = vec![0.0; 1 << n_qubits];
        re[k] = 1.0;
        StateVector { n_qubits, re, im }
    }

    /// Builds a state from raw interleaved amplitudes.
    ///
    /// # Panics
    ///
    /// Panics when the length is not a power of two matching `n_qubits`.
    pub fn from_amplitudes(n_qubits: usize, amps: Vec<C64>) -> Self {
        assert_eq!(amps.len(), 1 << n_qubits, "amplitude count must be 2^n");
        let re = amps.iter().map(|a| a.re).collect();
        let im = amps.iter().map(|a| a.im).collect();
        StateVector { n_qubits, re, im }
    }

    /// Builds a state from raw split planes.
    ///
    /// # Panics
    ///
    /// Panics when the planes disagree in length or don't hold `2ⁿ` entries.
    pub fn from_planes(n_qubits: usize, re: Vec<f64>, im: Vec<f64>) -> Self {
        assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        assert_eq!(re.len(), 1 << n_qubits, "amplitude count must be 2^n");
        StateVector { n_qubits, re, im }
    }

    /// The basis state `|b₀b₁…⟩` for classical bits (qubit 0 first).
    pub fn from_bits(bits: &[bool]) -> Self {
        let n = bits.len();
        let mut k = 0usize;
        for (q, &b) in bits.iter().enumerate() {
            if b {
                k |= 1 << qubit_bit(n, q);
            }
        }
        StateVector::basis_state(n, k)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2ⁿ`.
    pub fn dim(&self) -> usize {
        self.re.len()
    }

    /// Gathers the amplitudes into an owned interleaved copy — the interop
    /// and oracle view. Hot loops should read the split planes via
    /// [`planes`](Self::planes) instead; every per-state primitive in this
    /// crate has a plane form precisely so this gather never sits on a hot
    /// path.
    pub fn amplitudes(&self) -> Vec<C64> {
        planes_to_aos(&self.re, &self.im)
    }

    /// Amplitude of basis index `k`.
    pub fn amplitude(&self, k: usize) -> C64 {
        C64::new(self.re[k], self.im[k])
    }

    /// Borrows the split `(re, im)` planes.
    pub fn planes(&self) -> (&[f64], &[f64]) {
        (&self.re, &self.im)
    }

    /// Mutably borrows the split `(re, im)` planes.
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Squared norm — the total probability carried by this (branch) state.
    ///
    /// Summed with the fixed lane-split reduction of [`crate::lanes`]
    /// (lane = index mod 4, combine `(p0+p1)+(p2+p3)`): bit-identical
    /// across thread counts and vector widths, and the same order every
    /// other `|amp|²` reduction in the crate uses.
    pub fn norm_sqr(&self) -> f64 {
        lanes::sum_norm_sqr(&self.re, &self.im)
    }

    /// Probability of observing basis index `k` (relative to a normalised
    /// parent state).
    pub fn probability_of(&self, k: usize) -> f64 {
        self.re[k] * self.re[k] + self.im[k] * self.im[k]
    }

    /// Applies an arbitrary operator (not necessarily unitary) on `targets`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or duplicate targets.
    pub fn apply_gate(&mut self, gate: &Matrix, targets: &[usize]) {
        apply_matrix_planes(&mut self.re, &mut self.im, self.n_qubits, gate, targets);
    }

    /// Returns a copy with the operator applied.
    pub fn with_gate(&self, gate: &Matrix, targets: &[usize]) -> StateVector {
        let mut s = self.clone();
        s.apply_gate(gate, targets);
        s
    }

    /// Tensor product `self ⊗ other` (other's qubits appended after).
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let od = other.dim();
        let mut re = Vec::with_capacity(self.dim() * od);
        let mut im = Vec::with_capacity(self.dim() * od);
        for i in 0..self.dim() {
            let a = self.amplitude(i);
            for j in 0..od {
                let z = a * other.amplitude(j);
                re.push(z.re);
                im.push(z.im);
            }
        }
        StateVector {
            n_qubits: self.n_qubits + other.n_qubits,
            re,
            im,
        }
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n_qubits, other.n_qubits, "qubit-count mismatch");
        let mut acc = C64::ZERO;
        for i in 0..self.dim() {
            acc = acc.mul_add(self.amplitude(i).conj(), other.amplitude(i));
        }
        acc
    }

    /// Approximate equality within entry-wise tolerance `tol`.
    pub fn approx_eq(&self, other: &StateVector, tol: f64) -> bool {
        self.n_qubits == other.n_qubits
            && (0..self.dim()).all(|i| self.amplitude(i).approx_eq(other.amplitude(i), tol))
    }

    /// Scales all amplitudes by `s`.
    pub fn scale(&mut self, s: C64) {
        for (ar, ai) in self.re.iter_mut().zip(self.im.iter_mut()) {
            let z = C64::new(*ar, *ai) * s;
            *ar = z.re;
            *ai = z.im;
        }
    }

    /// Reads out the classical value of qubit `q` assuming the state is a
    /// basis state on that qubit; returns `None` if the qubit is in
    /// superposition (beyond tolerance `1e-9`).
    pub fn classical_bit(&self, q: usize) -> Option<bool> {
        let mask = 1usize << qubit_bit(self.n_qubits, q);
        let mut p1 = 0.0;
        let mut p0 = 0.0;
        for i in 0..self.dim() {
            let n = self.re[i] * self.re[i] + self.im[i] * self.im[i];
            if i & mask != 0 {
                p1 += n;
            } else {
                p0 += n;
            }
        }
        let total = p0 + p1;
        if total == 0.0 {
            return None;
        }
        if p1 / total < 1e-9 {
            Some(false)
        } else if p0 / total < 1e-9 {
            Some(true)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_is_normalised() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.dim(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.probability_of(0), 1.0);
    }

    #[test]
    fn from_bits_sets_correct_index() {
        // qubit0=1, qubit1=0, qubit2=1 → index 0b101 = 5
        let s = StateVector::from_bits(&[true, false, true]);
        assert_eq!(s.probability_of(5), 1.0);
    }

    #[test]
    fn bell_state_construction() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&Matrix::hadamard(), &[0]);
        s.apply_gate(&Matrix::cnot(), &[0, 1]);
        assert!((s.probability_of(0) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(3) - 0.5).abs() < 1e-12);
        assert!(s.probability_of(1) < 1e-15);
        assert!(s.probability_of(2) < 1e-15);
    }

    #[test]
    fn unitaries_preserve_norm() {
        let mut s = StateVector::zero_state(3);
        for (g, t) in [
            (Matrix::hadamard(), vec![0]),
            (Matrix::pauli_y(), vec![2]),
            (Matrix::cnot(), vec![0, 2]),
            (Matrix::rotation_from_involution(&Matrix::pauli_x(), 1.3), vec![1]),
        ] {
            s.apply_gate(&g, &t);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tensor_concatenates_registers() {
        let a = StateVector::basis_state(1, 1); // |1⟩
        let b = StateVector::basis_state(2, 0); // |00⟩
        let t = a.tensor(&b);
        assert_eq!(t.num_qubits(), 3);
        assert_eq!(t.probability_of(0b100), 1.0);
    }

    #[test]
    fn classical_bit_detection() {
        let s = StateVector::from_bits(&[true, false]);
        assert_eq!(s.classical_bit(0), Some(true));
        assert_eq!(s.classical_bit(1), Some(false));
        let mut plus = StateVector::zero_state(1);
        plus.apply_gate(&Matrix::hadamard(), &[0]);
        assert_eq!(plus.classical_bit(0), None);
    }

    #[test]
    fn inner_product_with_self_is_norm() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&Matrix::hadamard(), &[1]);
        let ip = s.inner(&s);
        assert!((ip.re - s.norm_sqr()).abs() < 1e-14);
        assert!(ip.im.abs() < 1e-14);
    }

    #[test]
    fn amplitudes_round_trip_through_planes() {
        let mut s = StateVector::zero_state(3);
        s.apply_gate(&Matrix::hadamard(), &[0]);
        s.apply_gate(&Matrix::cnot(), &[0, 2]);
        let amps = s.amplitudes();
        let rebuilt = StateVector::from_amplitudes(3, amps.clone());
        assert_eq!(rebuilt, s);
        let (re, im) = s.planes();
        let by_planes = StateVector::from_planes(3, re.to_vec(), im.to_vec());
        assert_eq!(by_planes, s);
        for (k, a) in amps.iter().enumerate() {
            assert_eq!(s.amplitude(k), *a);
        }
    }

    #[test]
    fn scale_matches_complex_multiply() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&Matrix::hadamard(), &[0]);
        let before = s.amplitudes();
        let f = C64::new(0.6, -0.3);
        s.scale(f);
        for (k, b) in before.iter().enumerate() {
            let expected = *b * f;
            assert_eq!(s.amplitude(k).re.to_bits(), expected.re.to_bits());
            assert_eq!(s.amplitude(k).im.to_bits(), expected.im.to_bits());
        }
    }
}
