//! Observable and differential semantics (Section 5 of the paper).
//!
//! * **Observable semantics** (Definition 5.1): for an observable `O` and an
//!   input `ρ`, the program denotes the function
//!   `θ* ↦ tr(O · [[P(θ*)]]ρ)`. For an additive program, the value is the
//!   *sum* over its compiled multiset (Eq. 5.4).
//! * **Observable semantics with ancilla** (Definition 5.2): programs over
//!   `v ∪ {A}` read out `tr((OA ⊗ O) · [[P′]](|0⟩A⟨0| ⊗ ρ))`, with `OA = ZA`
//!   fixed as in the soundness proof.
//! * **Differential semantics** (Definition 5.3): `S′` computes the `j`-th
//!   differential semantics of `S` iff the above equals
//!   `∂/∂θj tr(O · [[S]]ρ)` for *every* `O` and `ρ` — the strongest possible
//!   quantifier order, which is what makes composition work.

use qdp_lang::ast::{Params, Stmt};
use qdp_lang::{compile, denot, Register};
use qdp_sim::{DensityMatrix, Observable, StateVector};

/// Observable semantics `[[(O, ρ) → P(θ*)]] = tr(O · [[P(θ*)]]ρ)`
/// (Definition 5.1) of a normal program.
///
/// # Panics
///
/// Panics when `stmt` is additive; use [`observable_semantics_additive`].
pub fn observable_semantics(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    obs: &Observable,
    rho: &DensityMatrix,
) -> f64 {
    obs.expectation(&denot::denote(stmt, reg, params, rho))
}

/// Observable semantics of an additive program: the sum over its compiled
/// multiset (Eq. 5.4).
pub fn observable_semantics_additive(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    obs: &Observable,
    rho: &DensityMatrix,
) -> f64 {
    compile::compile(stmt)
        .iter()
        .map(|p| observable_semantics(p, reg, params, obs, rho))
        .sum()
}

/// Observable semantics **with ancilla** (Definition 5.2):
/// `tr((ZA ⊗ O) · [[P′(θ*)]]((|0⟩A⟨0|) ⊗ ρ))`, where `P′` runs on the
/// extended register (`ancilla` at index 0) and `O`/`ρ` live on the base
/// register.
///
/// # Panics
///
/// Panics when `stmt` is additive or register sizes are inconsistent.
pub fn observable_semantics_with_ancilla(
    stmt: &Stmt,
    ext_reg: &Register,
    params: &Params,
    obs: &Observable,
    rho: &DensityMatrix,
) -> f64 {
    assert_eq!(
        ext_reg.len(),
        rho.num_qubits() + 1,
        "extended register must have exactly one more qubit than the input state"
    );
    let ext_obs = obs.with_ancilla_z();
    let ext_rho = rho.prepend_zero_ancilla();
    observable_semantics(stmt, ext_reg, params, &ext_obs, &ext_rho)
}

/// Ancilla-extended observable semantics summed over a compiled multiset —
/// the quantity (7.1) the execution procedure estimates.
pub fn observable_semantics_with_ancilla_additive(
    stmt: &Stmt,
    ext_reg: &Register,
    params: &Params,
    obs: &Observable,
    rho: &DensityMatrix,
) -> f64 {
    compile::compile(stmt)
        .iter()
        .map(|p| observable_semantics_with_ancilla(p, ext_reg, params, obs, rho))
        .sum()
}

/// Pure-state fast path of [`observable_semantics_with_ancilla`]: the input
/// is `|0⟩A ⊗ |ψ⟩` and branch expectations are summed.
pub fn observable_semantics_with_ancilla_pure(
    stmt: &Stmt,
    ext_reg: &Register,
    params: &Params,
    obs: &Observable,
    psi: &StateVector,
) -> f64 {
    let ext_obs = obs.with_ancilla_z();
    let ext_psi = StateVector::zero_state(1).tensor(psi);
    denot::expectation_pure(stmt, ext_reg, params, &ext_psi, &ext_obs)
}

/// Central finite difference `(f(x+h) − f(x−h)) / 2h` — the numerical oracle
/// the soundness tests compare differential semantics against.
pub fn central_difference(mut f: impl FnMut(f64) -> f64, x: f64, h: f64) -> f64 {
    (f(x + h) - f(x - h)) / (2.0 * h)
}

/// The derivative of the observable semantics of a normal program with
/// respect to `param`, computed *numerically* (Definition 5.3's right-hand
/// side). Used as the reference in tests and benchmarks.
pub fn numeric_derivative(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    param: &str,
    obs: &Observable,
    rho: &DensityMatrix,
    h: f64,
) -> f64 {
    let base = params
        .get(param)
        .unwrap_or_else(|| panic!("parameter '{param}' has no value"));
    central_difference(
        |x| {
            let mut shifted = params.clone();
            shifted.set(param, x);
            observable_semantics(stmt, reg, &shifted, obs, rho)
        },
        base,
        h,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::parse_program;

    #[test]
    fn observable_semantics_of_rotation() {
        // ⟨Z⟩ after RY(θ)|0⟩ is cos θ.
        let p = parse_program("q1 *= RY(t)").unwrap();
        let reg = Register::from_program(&p);
        let obs = Observable::pauli_z(1, 0);
        let rho = DensityMatrix::pure_zero(1);
        for theta in [0.0, 0.4, 1.2, 2.8] {
            let params = Params::from_pairs([("t", theta)]);
            let val = observable_semantics(&p, &reg, &params, &obs, &rho);
            assert!((val - theta.cos()).abs() < 1e-12, "θ={theta}");
        }
    }

    #[test]
    fn additive_semantics_sums_components() {
        let p = parse_program("skip[q1] + skip[q1]").unwrap();
        let reg = Register::from_program(&p);
        let obs = Observable::pauli_z(1, 0);
        let rho = DensityMatrix::pure_zero(1);
        let val = observable_semantics_additive(&p, &reg, &Params::new(), &obs, &rho);
        assert!((val - 2.0).abs() < 1e-12, "two identity traces sum to 2");
    }

    #[test]
    fn ancilla_semantics_ignores_trivial_ancilla() {
        // A program that never touches the ancilla: ZA reads +1, so the
        // extended semantics equals the plain semantics.
        let p = parse_program("q1 *= RY(t)").unwrap();
        let base_reg = Register::from_program(&p);
        let ext_reg = base_reg.with_ancilla_front("A".into());
        let obs = Observable::pauli_z(1, 0);
        let rho = DensityMatrix::pure_zero(1);
        let params = Params::from_pairs([("t", 0.9)]);
        let plain = observable_semantics(&p, &base_reg, &params, &obs, &rho);
        let ext = observable_semantics_with_ancilla(&p, &ext_reg, &params, &obs, &rho);
        assert!((plain - ext).abs() < 1e-12);
    }

    #[test]
    fn pure_and_dense_ancilla_semantics_agree() {
        let p = parse_program("q1 *= RX(t); case M[q1] = 0 -> skip[q2], 1 -> q2 *= RY(t) end")
            .unwrap();
        let base_reg = Register::from_program(&p);
        let ext_reg = base_reg.with_ancilla_front("A".into());
        let obs = Observable::pauli_z(2, 1);
        let params = Params::from_pairs([("t", 0.7)]);
        let psi = StateVector::zero_state(2);
        let rho = DensityMatrix::from_pure(&psi);
        let dense = observable_semantics_with_ancilla(&p, &ext_reg, &params, &obs, &rho);
        let pure = observable_semantics_with_ancilla_pure(&p, &ext_reg, &params, &obs, &psi);
        assert!((dense - pure).abs() < 1e-10);
    }

    #[test]
    fn numeric_derivative_matches_cosine() {
        let p = parse_program("q1 *= RY(t)").unwrap();
        let reg = Register::from_program(&p);
        let obs = Observable::pauli_z(1, 0);
        let rho = DensityMatrix::pure_zero(1);
        let params = Params::from_pairs([("t", 0.6)]);
        let d = numeric_derivative(&p, &reg, &params, "t", &obs, &rho, 1e-5);
        assert!((d + 0.6f64.sin()).abs() < 1e-8);
    }

    #[test]
    fn central_difference_of_square() {
        let d = central_difference(|x| x * x, 3.0, 1e-6);
        assert!((d - 6.0).abs() < 1e-6);
    }
}
