//! Lowered (pre-resolved) execution of compiled derivative programs.
//!
//! [`crate::Differentiated`] evaluates the same compiled multiset `{P′i}` at
//! every gradient step; interpreting the AST each time re-resolves variable
//! names against the register, re-allocates measurement operators, and
//! re-unfolds bounded loops — all parameter-independent work. This module
//! hoists it: each program is lowered **once** into a flat op list with
//!
//! * qubit indices resolved (no per-gate register lookups or `Vec` allocs),
//! * parameter names interned into **slots** (one valuation lookup per
//!   parameter per run instead of one per gate),
//! * measurement operators and the `q := |0⟩` Kraus pair pre-built,
//! * bounded `while` loops statically unfolded into nested cases.
//!
//! The executor mirrors `qdp_lang::denot::run_pure_branches` exactly —
//! branch order, pruning threshold, and per-gate arithmetic are identical,
//! so results agree bit-for-bit with the AST interpreter.

use qdp_lang::ast::{Gate, Params, Stmt};
use qdp_lang::Register;
use qdp_linalg::Matrix;
use qdp_sim::{Measurement, Observable, StateVector};

/// Branches below this squared norm are pruned (matches `denot`).
const PRUNE: f64 = 1e-24;

/// One lowered operation.
#[derive(Clone, Debug)]
enum Op {
    /// `abort`: drop the branch.
    Abort,
    /// A unitary application with pre-resolved targets and parameter slot.
    Gate {
        gate: Gate,
        /// Index into the run's slot values, or `None` for constant angles.
        slot: Option<usize>,
        /// Additive angle offset (the gadget's `θ + π` shifts).
        offset: f64,
        targets: Vec<usize>,
    },
    /// `q := |0⟩` with the Kraus pair pre-built.
    Init {
        k0: Matrix,
        k1: Matrix,
        target: usize,
    },
    /// A measurement case over pre-built operators.
    Case {
        meas: Measurement,
        arms: Vec<LoweredProgram>,
    },
}

/// A lowered normal program: a flat sequence of [`Op`]s.
#[derive(Clone, Debug, Default)]
pub(crate) struct LoweredProgram {
    ops: Vec<Op>,
}

/// A compiled multiset lowered against one register, with a shared
/// parameter-slot table.
#[derive(Clone, Debug, Default)]
pub(crate) struct LoweredSet {
    programs: Vec<LoweredProgram>,
    /// Interned parameter names; slot `i` of a run valuation holds the value
    /// of `param_names[i]`.
    param_names: Vec<String>,
}

impl LoweredSet {
    /// Lowers every program of a compiled multiset.
    ///
    /// # Panics
    ///
    /// Panics when a program is additive or uses a variable outside `reg`.
    pub fn lower(compiled: &[Stmt], reg: &Register) -> Self {
        let mut set = LoweredSet::default();
        set.programs = compiled
            .iter()
            .map(|p| {
                let mut prog = LoweredProgram::default();
                set_lower(p, reg, &mut set.param_names, &mut prog.ops);
                prog
            })
            .collect();
        set
    }

    /// The interned parameter names, in slot order.
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// Resolves a valuation into slot values.
    ///
    /// # Panics
    ///
    /// Panics when a used parameter has no value (same message as
    /// `Angle::eval`).
    pub fn slot_values(&self, params: &Params) -> Vec<f64> {
        self.param_names
            .iter()
            .map(|name| {
                params
                    .get(name)
                    .unwrap_or_else(|| panic!("parameter '{name}' has no value"))
            })
            .collect()
    }

    /// The lowered programs, for per-program parallel evaluation.
    pub fn programs(&self) -> &[LoweredProgram] {
        &self.programs
    }
}

fn intern(names: &mut Vec<String>, name: &str) -> usize {
    match names.iter().position(|n| n == name) {
        Some(i) => i,
        None => {
            names.push(name.to_string());
            names.len() - 1
        }
    }
}

fn set_lower(stmt: &Stmt, reg: &Register, names: &mut Vec<String>, out: &mut Vec<Op>) {
    match stmt {
        Stmt::Skip { .. } => {}
        Stmt::Abort { .. } => out.push(Op::Abort),
        Stmt::Init { q } => out.push(Op::Init {
            k0: Matrix::from_real_rows(&[&[1.0, 0.0], &[0.0, 0.0]]),
            k1: Matrix::from_real_rows(&[&[0.0, 1.0], &[0.0, 0.0]]),
            target: reg.indices_of(std::slice::from_ref(q))[0],
        }),
        Stmt::Unitary { gate, qs } => {
            let (slot, offset) = match gate.angle() {
                Some(angle) => (
                    angle.param.as_deref().map(|p| intern(names, p)),
                    angle.offset,
                ),
                None => (None, 0.0),
            };
            out.push(Op::Gate {
                gate: gate.clone(),
                slot,
                offset,
                targets: reg.indices_of(qs),
            });
        }
        Stmt::Seq(a, b) => {
            set_lower(a, reg, names, out);
            set_lower(b, reg, names, out);
        }
        Stmt::Case { qs, arms } => {
            let meas = Measurement::computational(reg.indices_of(qs));
            let arms = arms
                .iter()
                .map(|arm| {
                    let mut prog = LoweredProgram::default();
                    set_lower(arm, reg, names, &mut prog.ops);
                    prog
                })
                .collect();
            out.push(Op::Case { meas, arms });
        }
        Stmt::While { .. } => {
            // Bounded loops terminate statically: each unfold decrements the
            // bound, so full unrolling at lowering time is finite.
            set_lower(&stmt.unfold_while_once(), reg, names, out);
        }
        Stmt::Sum(..) => panic!("lowering is defined on normal programs; compile first"),
    }
}

impl LoweredProgram {
    /// Runs the program on a pure input, appending the surviving
    /// unnormalised branches to `out` in the same depth-first order as
    /// `denot::run_pure_branches`.
    fn run_from(&self, start: usize, values: &[f64], mut psi: StateVector, out: &mut Vec<StateVector>) {
        for (i, op) in self.ops.iter().enumerate().skip(start) {
            match op {
                Op::Abort => return,
                Op::Gate {
                    gate,
                    slot,
                    offset,
                    targets,
                } => {
                    let theta = slot.map_or(0.0, |s| values[s]) + offset;
                    psi.apply_gate(&gate.matrix_at(theta), targets);
                }
                Op::Init { k0, k1, target } => {
                    let b1 = psi.with_gate(k1, &[*target]);
                    psi.apply_gate(k0, &[*target]);
                    if psi.norm_sqr() > PRUNE {
                        self.run_from(i + 1, values, psi, out);
                    }
                    if b1.norm_sqr() > PRUNE {
                        self.run_from(i + 1, values, b1, out);
                    }
                    return;
                }
                Op::Case { meas, arms } => {
                    for b in meas.branches_pure(&psi) {
                        if b.probability > PRUNE {
                            let mut mids = Vec::new();
                            arms[b.outcome].run_from(0, values, b.state, &mut mids);
                            for mid in mids {
                                self.run_from(i + 1, values, mid, out);
                            }
                        }
                    }
                    return;
                }
            }
        }
        out.push(psi);
    }

    /// `Σ_branches ⟨ψb|O|ψb⟩` — the expectation of the program's output.
    pub fn expectation_pure(&self, values: &[f64], psi: &StateVector, obs: &Observable) -> f64 {
        let mut branches = Vec::new();
        self.run_from(0, values, psi.clone(), &mut branches);
        branches.iter().map(|b| obs.expectation_pure(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::{denot, parse_program};

    fn check_agreement(src: &str, values: &[(&str, f64)]) {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        let params = Params::from_pairs(values.iter().map(|&(k, v)| (k, v)));
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        let slots = set.slot_values(&params);
        let psi = StateVector::zero_state(reg.len());
        let obs = Observable::pauli_z(reg.len(), 0);

        let lowered = set.programs()[0].expectation_pure(&slots, &psi, &obs);
        let interpreted = denot::expectation_pure(&p, &reg, &params, &psi, &obs);
        assert!(
            (lowered - interpreted).abs() < 1e-14,
            "{src}: lowered {lowered} vs interpreted {interpreted}"
        );
    }

    #[test]
    fn straight_line_program_agrees_with_interpreter() {
        check_agreement("q1 *= RX(a); q1 *= RY(b); q1 *= RZ(a + pi/2); q1 *= H", &[
            ("a", 0.4),
            ("b", -1.2),
        ]);
    }

    #[test]
    fn branching_programs_agree_with_interpreter() {
        check_agreement(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 := |0>; q1, q2 *= RZZ(a) end",
            &[("a", 0.8), ("b", 0.3)],
        );
        check_agreement(
            "q1 *= RY(a); while[2] M[q1] = 1 do q1 *= RY(b) done",
            &[("a", 1.9), ("b", 0.7)],
        );
        check_agreement("q1 *= H; abort[q1]", &[]);
    }

    #[test]
    fn slots_are_shared_and_deduplicated() {
        let p = parse_program("q1 *= RX(a); q1 *= RY(a); q1 *= RZ(b)").unwrap();
        let reg = Register::from_program(&p);
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        assert_eq!(set.param_names.len(), 2);
    }

    #[test]
    #[should_panic(expected = "has no value")]
    fn missing_parameter_panics_like_the_interpreter() {
        let p = parse_program("q1 *= RX(a)").unwrap();
        let reg = Register::from_program(&p);
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        let _ = set.slot_values(&Params::new());
    }
}
