//! Report helpers for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print the same rows/series the paper reports:
//!
//! * `table2` — Table 2 (Section 8.2): resource metrics on the M/L
//!   benchmark instances,
//! * `table3` — Table 3 (Appendix F.2): the full 24-row instance set,
//! * `fig6` — Figure 6 (Section 8.1): training curves of `P1` vs `P2`,
//! * `estimator_sweep` — the Section 7 sampling-cost claims.

use qdp_ad::{differentiate, occurrence_count};
use qdp_lang::pretty;
use qdp_vqc::families::{Control, InstanceConfig, THETA};

/// Measured metrics for one benchmark instance — the columns of Tables 2/3.
#[derive(Clone, Debug)]
pub struct MeasuredRow {
    /// Instance name, e.g. `QNN_{M,i}`.
    pub name: String,
    /// Occurrence count `OC(·)` for `theta` (Definition 7.1).
    pub oc: usize,
    /// `|#∂/∂θ(·)|` — compiled non-aborting derivative programs
    /// (Definition 4.3).
    pub derivative_programs: usize,
    /// Unitary gate count (while bodies × bound).
    pub gates: usize,
    /// Pretty-printed source lines.
    pub lines: usize,
    /// Layer count (while layers unrolled ×2, matching the paper).
    pub layers: usize,
    /// Register width.
    pub qubits: usize,
}

/// Paper-reported values for the same columns (from Tables 2 and 3).
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// `OC(·)`.
    pub oc: usize,
    /// `|#∂/∂θ(·)|`.
    pub derivative_programs: usize,
    /// `#gates`.
    pub gates: usize,
    /// `#lines`.
    pub lines: usize,
    /// `#layers`.
    pub layers: usize,
    /// `#qb's`.
    pub qubits: usize,
}

/// Computes the measured row for one instance.
pub fn measure(config: &InstanceConfig) -> MeasuredRow {
    let program = config.build();
    let diff = differentiate(&program, THETA).expect("benchmark instances are differentiable");
    let layers = match config.control {
        Control::Basic | Control::Shared | Control::If => config.depth,
        Control::While => 1 + 2 * (config.depth - 1),
    };
    MeasuredRow {
        name: config.name.clone(),
        oc: occurrence_count(&program, THETA),
        derivative_programs: diff.compiled().len(),
        gates: program.gate_count(),
        lines: pretty::line_count(&program),
        layers,
        qubits: program.qvar().len(),
    }
}

/// The paper's Table 3 values, keyed by instance name (Table 2 is the
/// M/L subset of these rows).
pub fn paper_table3() -> Vec<(&'static str, PaperRow)> {
    // name, OC, |#∂|, #gates, #lines, #layers, #qb's
    let raw: &[(&str, [usize; 6])] = &[
        ("QNN_{S,b}", [1, 1, 20, 24, 1, 4]),
        ("QNN_{S,s}", [5, 5, 20, 24, 1, 4]),
        ("QNN_{S,i}", [10, 10, 60, 67, 2, 4]),
        ("QNN_{S,w}", [15, 10, 60, 66, 3, 4]),
        ("QNN_{M,i}", [24, 24, 165, 189, 3, 18]),
        ("QNN_{M,w}", [56, 24, 231, 121, 5, 18]),
        ("QNN_{L,i}", [48, 48, 363, 414, 6, 36]),
        ("QNN_{L,w}", [504, 48, 2079, 244, 33, 36]),
        ("VQE_{S,b}", [1, 1, 14, 16, 1, 2]),
        ("VQE_{S,s}", [2, 2, 14, 16, 1, 2]),
        ("VQE_{S,i}", [4, 4, 28, 38, 2, 2]),
        ("VQE_{S,w}", [6, 4, 42, 32, 3, 2]),
        ("VQE_{M,i}", [15, 15, 224, 241, 3, 12]),
        ("VQE_{M,w}", [35, 15, 224, 112, 5, 12]),
        ("VQE_{L,i}", [40, 40, 576, 628, 5, 40]),
        ("VQE_{L,w}", [248, 40, 1984, 368, 17, 40]),
        ("QAOA_{S,b}", [1, 1, 12, 15, 1, 3]),
        ("QAOA_{S,s}", [3, 3, 12, 15, 1, 3]),
        ("QAOA_{S,i}", [6, 6, 36, 41, 2, 3]),
        ("QAOA_{S,w}", [9, 6, 36, 29, 3, 3]),
        ("QAOA_{M,i}", [18, 18, 120, 142, 3, 18]),
        ("QAOA_{M,w}", [42, 18, 168, 94, 5, 18]),
        ("QAOA_{L,i}", [36, 36, 264, 315, 6, 36]),
        ("QAOA_{L,w}", [378, 36, 1512, 190, 33, 36]),
    ];
    raw.iter()
        .map(|&(name, [oc, dp, gates, lines, layers, qubits])| {
            (
                name,
                PaperRow {
                    oc,
                    derivative_programs: dp,
                    gates,
                    lines,
                    layers,
                    qubits,
                },
            )
        })
        .collect()
}

/// Renders a measured-vs-paper comparison table as plain text.
pub fn render_comparison(rows: &[(MeasuredRow, Option<PaperRow>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} | {:>9} | {:>11} | {:>13} | {:>11} | {:>9} | {:>7}\n",
        "P(θ)", "OC(·)", "|#∂/∂θ(·)|", "#gates", "#lines", "#layers", "#qb's"
    ));
    out.push_str(&"-".repeat(92));
    out.push('\n');
    for (m, p) in rows {
        let fmt = |measured: usize, paper: Option<usize>| match paper {
            Some(p) if p == measured => format!("{measured} (={p})"),
            Some(p) => format!("{measured} ({p})"),
            None => format!("{measured}"),
        };
        out.push_str(&format!(
            "{:<12} | {:>9} | {:>11} | {:>13} | {:>11} | {:>9} | {:>7}\n",
            m.name,
            fmt(m.oc, p.map(|x| x.oc)),
            fmt(m.derivative_programs, p.map(|x| x.derivative_programs)),
            fmt(m.gates, p.map(|x| x.gates)),
            fmt(m.lines, p.map(|x| x.lines)),
            fmt(m.layers, p.map(|x| x.layers)),
            fmt(m.qubits, p.map(|x| x.qubits)),
        ));
    }
    out.push_str("\nformat: measured (paper); (=N) marks exact agreement\n");
    out
}

/// Convenience: measured rows for all 24 Table 3 instances paired with the
/// paper's values.
pub fn table3_rows() -> Vec<(MeasuredRow, Option<PaperRow>)> {
    let paper = paper_table3();
    qdp_vqc::families::paper_instances()
        .iter()
        .map(|config| {
            let m = measure(config);
            let p = paper
                .iter()
                .find(|(name, _)| *name == m.name)
                .map(|(_, row)| *row);
            (m, p)
        })
        .collect()
}

/// The M/L subset — Table 2.
pub fn table2_rows() -> Vec<(MeasuredRow, Option<PaperRow>)> {
    table3_rows()
        .into_iter()
        .filter(|(m, _)| m.name.contains("M,") || m.name.contains("L,"))
        .collect()
}

/// Renders the Section 7 **shot-budget** companion of the copy-count
/// tables: total sampled trajectories per θ-gradient at each target
/// precision `δ`, computed from the measured `|#∂/∂θ(·)|` through
/// `qdp_ad::resource`'s Chernoff wiring (`⌈m²/δ²⌉` — each trajectory
/// consumes a fresh input-state copy, so this is the execution cost the
/// resource analysis ultimately controls).
pub fn render_shot_budgets(rows: &[(MeasuredRow, Option<PaperRow>)], deltas: &[f64]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<12} | {:>11}", "P(θ)", "|#∂/∂θ(·)|"));
    for d in deltas {
        out.push_str(&format!(" | {:>14}", format!("shots @ δ={d}")));
    }
    out.push('\n');
    out.push_str(&"-".repeat(28 + 17 * deltas.len()));
    out.push('\n');
    for (m, _) in rows {
        let report = qdp_ad::ResourceReport {
            param: qdp_vqc::families::THETA.to_string(),
            occurrence_count: m.oc,
            derivative_programs: m.derivative_programs,
        };
        out.push_str(&format!("{:<12} | {:>11}", m.name, m.derivative_programs));
        for &d in deltas {
            out.push_str(&format!(" | {:>14}", report.chernoff_budget(d)));
        }
        out.push('\n');
    }
    out.push_str("\nshots = ⌈m²/δ²⌉ trajectories (= input-state copies) per derivative\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_satisfy_proposition_7_2() {
        for (m, _) in table3_rows() {
            assert!(
                m.derivative_programs <= m.oc,
                "{}: |#∂| = {} > OC = {}",
                m.name,
                m.derivative_programs,
                m.oc
            );
        }
    }

    #[test]
    fn if_and_while_variants_have_equal_program_counts() {
        // The paper's key empirical observation: |#∂| matches between the
        // i and w variants because aborting unrollings are optimised out.
        let rows = table3_rows();
        let get = |name: &str| {
            rows.iter()
                .find(|(m, _)| m.name == name)
                .map(|(m, _)| m.derivative_programs)
                .unwrap()
        };
        for family in ["QNN", "VQE", "QAOA"] {
            assert_eq!(
                get(&format!("{family}_{{S,i}}")),
                get(&format!("{family}_{{S,w}}")),
                "{family} S"
            );
        }
    }

    #[test]
    fn qubit_counts_match_paper_everywhere() {
        for (m, p) in table3_rows() {
            let p = p.expect("paper row exists");
            assert_eq!(m.qubits, p.qubits, "{}", m.name);
        }
    }

    #[test]
    fn oc_matches_paper_on_primary_rows() {
        // Structural knobs were calibrated to reproduce OC for the b/s/i
        // variants exactly.
        for (m, p) in table3_rows() {
            if m.name.contains(",w") {
                continue;
            }
            let p = p.expect("paper row exists");
            assert_eq!(m.oc, p.oc, "{}", m.name);
        }
    }

    #[test]
    fn medium_rows_match_paper_oc_exactly() {
        // The M-row OC column is the calibration target for while variants
        // too (Table 2).
        for name in [
            "QNN_{M,i}",
            "QNN_{M,w}",
            "VQE_{M,i}",
            "VQE_{M,w}",
            "QAOA_{M,i}",
            "QAOA_{M,w}",
        ] {
            let (m, p) = table3_rows()
                .into_iter()
                .find(|(m, _)| m.name == name)
                .unwrap();
            assert_eq!(m.oc, p.unwrap().oc, "{name}");
        }
    }

    #[test]
    fn qaoa_gate_counts_match_paper_on_every_row() {
        for (m, p) in table3_rows() {
            if m.name.starts_with("QAOA") && !m.name.contains("L,w") {
                assert_eq!(m.gates, p.unwrap().gates, "{}", m.name);
            }
        }
    }

    #[test]
    fn render_produces_one_line_per_row() {
        let rows = table2_rows();
        let text = render_comparison(&rows);
        // header + separator + rows + blank line + legend
        assert_eq!(text.lines().count(), rows.len() + 4);
    }

    #[test]
    fn shot_budgets_follow_chernoff_formula() {
        let rows = table2_rows();
        let text = render_shot_budgets(&rows, &[0.1]);
        assert_eq!(text.lines().count(), rows.len() + 4);
        // Spot-check one row: QNN_{M,i} has m = 24 → 24²/0.1² = 57600.
        let qnn = text
            .lines()
            .find(|l| l.starts_with("QNN_{M,i}"))
            .expect("QNN_{M,i} row present");
        assert!(qnn.contains("57600"), "{qnn}");
    }
}
