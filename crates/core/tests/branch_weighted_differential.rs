//! Differential tests of the **branch-weighted exact executor** against the
//! retained per-row branch-enumeration oracle.
//!
//! Randomized *branching* circuits (up to 8 qubits, with measurement
//! `case`s, `q := |0⟩` resets, and bounded `while` loops — every program is
//! guaranteed at least one branch point, so the batched path always runs
//! the branch-weighted sweep, never the straight-line fast path) are
//! evaluated on random input batches of sizes 1, 2, 16, and 33. For each
//! circuit the suite asserts:
//!
//! * batched forward values, per-parameter derivatives (the derivative
//!   multisets the code transformation produces, including while-unroll
//!   cases), and full gradients match the per-row oracle
//!   (`ResolvedProgram::expectation_pure` branch enumeration, and the AST
//!   interpreter for forwards) to `1e-12`,
//! * per-row results are **bitwise** invariant under batch composition and
//!   under forced 1-, 2-, and 8-thread `qdp_par` configurations, and
//! * the surviving **leaf weights of every row sum to 1** on abort-free
//!   programs (the branch tree is trace-preserving), the property pinning
//!   the weight bookkeeping of the regrouping machinery.

use qdp_ad::{differentiate, GradientEngine};
use qdp_lang::ast::{Angle, Gate, Params, Stmt, Var};
use qdp_lang::Register;
use qdp_linalg::{C64, Pauli};
use qdp_sim::{BatchedStates, Observable, ShotEngine, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Serializes every test in this binary: `set_max_threads` requires a
/// quiesced process (see `batch_equivalence.rs`).
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const TOL: f64 = 1e-12;
const BATCH_SIZES: [usize; 4] = [1, 2, 16, 33];

fn var(i: usize) -> Var {
    Var::new(format!("q{}", i + 1))
}

/// A random **branching** program over `n` qubits: parameterized rotations
/// and couplings interleaved with measurement `case`s, `q := |0⟩` resets,
/// and (with `with_while`) bounded `while` loops. The leading `case`
/// guarantees at least one branch point, so these programs can never take
/// the straight-line fast path.
fn random_branching_program(
    rng: &mut StdRng,
    n: usize,
    params: &[String],
    len: usize,
    with_while: bool,
) -> Stmt {
    let axes = [Pauli::X, Pauli::Y, Pauli::Z];
    let mut stmts: Vec<Stmt> = Vec::with_capacity(len + n + 1);
    for q in 0..n {
        stmts.push(Stmt::unitary(Gate::H, [var(q)]));
    }
    // The guaranteed branch point.
    stmts.push(Stmt::Case {
        qs: vec![var(0)],
        arms: vec![
            Stmt::rot(Pauli::Y, params[0].clone(), var(n - 1)),
            Stmt::rot(Pauli::Z, params[params.len() - 1].clone(), var(0)),
        ],
    });
    for _ in 0..len {
        let param = params[rng.gen_range(0..params.len())].clone();
        let axis = axes[rng.gen_range(0..3usize)];
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..10usize) {
            0..=2 => stmts.push(Stmt::rot(axis, param, var(q))),
            3 => stmts.push(Stmt::unitary(
                Gate::Rot {
                    axis,
                    angle: Angle {
                        param: Some(param),
                        offset: std::f64::consts::PI / 2.0,
                    },
                },
                [var(q)],
            )),
            4 if n >= 2 => {
                let mut q2 = rng.gen_range(0..n);
                while q2 == q {
                    q2 = rng.gen_range(0..n);
                }
                stmts.push(Stmt::unitary(
                    Gate::Coupling {
                        axis,
                        angle: Angle::param(param),
                    },
                    [var(q), var(q2)],
                ));
            }
            5 => stmts.push(Stmt::init(var(q))),
            6 | 7 => {
                let other = params[rng.gen_range(0..params.len())].clone();
                stmts.push(Stmt::Case {
                    qs: vec![var(q)],
                    arms: vec![
                        Stmt::rot(axis, param, var((q + 1) % n)),
                        Stmt::rot(axes[rng.gen_range(0..3usize)], other, var(q)),
                    ],
                });
            }
            _ if with_while => stmts.push(Stmt::while_bounded(
                var(q),
                2,
                Stmt::rot(axis, param, var(q)),
            )),
            _ => stmts.push(Stmt::rot(axis, param, var(q))),
        }
    }
    Stmt::seq(stmts)
}

/// A random normalised pure state on `n` qubits.
fn random_state(rng: &mut StdRng, n: usize) -> StateVector {
    let dim = 1usize << n;
    let mut amps: Vec<C64> = (0..dim)
        .map(|_| C64::new(rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0))
        .collect();
    let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a = a.scale(1.0 / norm);
    }
    StateVector::from_amplitudes(n, amps)
}

fn random_batch(rng: &mut StdRng, n: usize, rows: usize) -> Vec<StateVector> {
    (0..rows).map(|_| random_state(rng, n)).collect()
}

struct Case {
    engine: GradientEngine,
    register: Register,
    params: Params,
    obs: Observable,
}

/// The randomized branching-circuit family: small, wide-register, and
/// while-unrolling configurations, up to 8 qubits.
fn cases() -> Vec<Case> {
    let configs: [(u64, usize, usize, usize, bool); 4] = [
        // (seed, qubits, params, ops, with_while)
        (101, 2, 3, 8, true),
        (211, 4, 6, 12, false),
        (307, 5, 8, 14, true),
        (401, 8, 4, 8, false),
    ];
    configs
        .into_iter()
        .map(|(seed, n, n_params, len, with_while)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let names: Vec<String> = (0..n_params).map(|i| format!("t{i}")).collect();
            let program = random_branching_program(&mut rng, n, &names, len, with_while);
            let register = Register::from_program(&program);
            let engine = GradientEngine::new(&program).expect("random programs differentiable");
            let params = Params::from_pairs(
                names
                    .iter()
                    .map(|name| (name.clone(), rng.gen::<f64>() * std::f64::consts::TAU)),
            );
            let obs = Observable::pauli_z(register.len(), rng.gen_range(0..register.len()));
            Case {
                engine,
                register,
                params,
                obs,
            }
        })
        .collect()
}

#[test]
fn branch_weighted_forward_values_match_interpreter() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xE1);
    for (ci, case) in cases().iter().enumerate() {
        for rows in BATCH_SIZES {
            let states = random_batch(&mut rng, case.register.len(), rows);
            let batch = BatchedStates::from_states(&states);
            let batched = case.engine.value_pure_batch(&case.params, &case.obs, &batch);
            for (r, psi) in states.iter().enumerate() {
                let serial = case.engine.value_pure(&case.params, &case.obs, psi);
                assert!(
                    (batched[r] - serial).abs() < TOL,
                    "case {ci} rows {rows} row {r}: batched {} vs interpreter {serial}",
                    batched[r]
                );
            }
        }
    }
}

#[test]
fn branch_weighted_derivative_multisets_match_per_row_oracle() {
    // The paper's core workload: derivative multisets of branching
    // programs (case/init/while-unrolled), batched sweep vs the per-row
    // branch enumerator `derivative_pure` routes through.
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xE2);
    for (ci, case) in cases().iter().enumerate() {
        let param = case.engine.parameters().next().expect("has parameters");
        let diff = differentiate(case.engine.program(), param).unwrap();
        for rows in BATCH_SIZES {
            let states = random_batch(&mut rng, case.register.len(), rows);
            let batch = BatchedStates::from_states(&states);
            let batched = diff.derivative_pure_batch(&case.params, &case.obs, &batch);
            for (r, psi) in states.iter().enumerate() {
                let oracle = diff.derivative_pure(&case.params, &case.obs, psi);
                assert!(
                    (batched[r] - oracle).abs() < TOL,
                    "case {ci} ∂/∂{param} rows {rows} row {r}: batched {} vs oracle {oracle}",
                    batched[r]
                );
            }
        }
    }
}

#[test]
fn branch_weighted_gradients_match_per_row_oracle_entrywise() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xE3);
    for (ci, case) in cases().iter().enumerate() {
        let rows = 16;
        let states = random_batch(&mut rng, case.register.len(), rows);
        let batch = BatchedStates::from_states(&states);
        let batched = case
            .engine
            .gradient_pure_batch(&case.params, &case.obs, &batch);
        assert_eq!(batched.len(), rows);
        for (r, psi) in states.iter().enumerate() {
            let serial = case.engine.gradient_pure(&case.params, &case.obs, psi);
            assert_eq!(batched[r].len(), serial.len());
            for (name, s) in &serial {
                let b = batched[r][name];
                assert!(
                    (b - s).abs() < TOL,
                    "case {ci} row {r} ∂/∂{name}: batched {b} vs oracle {s}"
                );
            }
        }
    }
}

#[test]
fn branch_weighted_rows_are_bitwise_invariant_under_batch_composition() {
    // A row's exact result must carry identical bits whether it runs alone
    // or inside any batch — the weighted regrouping performs per-row
    // identical floating-point operations regardless of grouping.
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xE4);
    for (ci, case) in cases().iter().enumerate() {
        let states = random_batch(&mut rng, case.register.len(), 7);
        let batch = BatchedStates::from_states(&states);
        let together = case.engine.value_pure_batch(&case.params, &case.obs, &batch);
        for (r, psi) in states.iter().enumerate() {
            let alone = case.engine.value_pure_batch(
                &case.params,
                &case.obs,
                &BatchedStates::from_states(std::slice::from_ref(psi)),
            )[0];
            assert_eq!(together[r].to_bits(), alone.to_bits(), "case {ci} row {r}");
        }
    }
}

/// Leaf weights of the branch-weighted sweep sum to 1 per row on
/// abort-free programs (normalised inputs): the weight a row starts with
/// is conserved by the trace-preserving branch tree, up to the pruning
/// threshold.
#[test]
fn leaf_weights_sum_to_one_per_row() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xE5);
    for (seed, n, n_params, len) in [(33u64, 2usize, 3usize, 8usize), (44, 4, 5, 10), (55, 5, 4, 9)] {
        let mut gen_rng = StdRng::seed_from_u64(seed);
        let names: Vec<String> = (0..n_params).map(|i| format!("t{i}")).collect();
        // No `while`: its unrolling introduces aborting branches, which
        // legitimately leak weight (covered by the oracle suites above).
        let program = random_branching_program(&mut gen_rng, n, &names, len, false);
        let register = Register::from_program(&program);
        let set = qdp_ad::LoweredSet::lower(std::slice::from_ref(&program), &register);
        let params = Params::from_pairs(
            names
                .iter()
                .map(|name| (name.clone(), gen_rng.gen::<f64>() * std::f64::consts::TAU)),
        );
        let values = set.slot_values(&params);
        let states = random_batch(&mut rng, register.len(), 9);
        for prog in set.programs() {
            let engine = ShotEngine::new(prog.resolve(&values).to_trajectory());
            let weights = engine.leaf_weights(BatchedStates::from_states(&states));
            for (r, row) in weights.iter().enumerate() {
                let total: f64 = row.iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "seed {seed} row {r}: {} leaves sum to {total}",
                    row.len()
                );
            }
        }
    }
}

/// Branch-weighted evaluation must be **bitwise** reproducible under
/// forced 1-, 2-, and 8-thread `qdp_par` configurations — CI runs the
/// suite under `QDP_PAR_THREADS=1` and `=8` on top of this.
#[test]
fn branch_weighted_results_are_bitwise_deterministic_across_thread_counts() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xE6);
    for (ci, case) in cases().iter().enumerate() {
        for rows in [2usize, 16] {
            let states = random_batch(&mut rng, case.register.len(), rows);
            let batch = BatchedStates::from_states(&states);
            type GradBits = Vec<Vec<(String, u64)>>;
            let mut runs: Vec<(Vec<u64>, GradBits)> = Vec::new();
            for threads in [1usize, 2, 8] {
                qdp_par::set_max_threads(threads);
                let values: Vec<u64> = case
                    .engine
                    .value_pure_batch(&case.params, &case.obs, &batch)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let grads: GradBits = case
                    .engine
                    .gradient_pure_batch(&case.params, &case.obs, &batch)
                    .iter()
                    .map(|row| row.iter().map(|(k, v)| (k.clone(), v.to_bits())).collect())
                    .collect();
                runs.push((values, grads));
            }
            qdp_par::set_max_threads(0); // restore auto-detection
            assert_eq!(runs[0], runs[1], "case {ci} rows {rows}: 1 vs 2 threads");
            assert_eq!(runs[1], runs[2], "case {ci} rows {rows}: 2 vs 8 threads");
        }
    }
}
