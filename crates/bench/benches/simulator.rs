//! Ablation: the reference density-operator engine versus the branching
//! pure-state engine on the same program and observable (they compute the
//! same expectation; the pure engine is the training fast path).

use criterion::{criterion_group, criterion_main, Criterion};
use qdp_lang::ast::Params;
use qdp_lang::{denot, parse_program, Register};
use qdp_sim::{DensityMatrix, Observable, StateVector};
use std::hint::black_box;
use std::time::Duration;

fn bench_engines(c: &mut Criterion) {
    let src = "
        q1 *= H; q2 *= H;
        q1, q3 *= RXX(a); q2, q4 *= RYY(b);
        case M[q1] = 0 -> q3 *= RY(a); q4 *= RZ(b),
                     1 -> q3 := |0>; q3, q4 *= RZZ(a) end;
        while[2] M[q4] = 1 do q2 *= RX(b) done;
        q5 *= RZ(a); q6 *= RY(b)";
    let program = parse_program(src).expect("valid program");
    let reg = Register::from_program(&program);
    let params = Params::from_pairs([("a", 0.7), ("b", -0.4)]);
    let obs = Observable::pauli_z(reg.len(), 2);
    let psi = StateVector::zero_state(reg.len());
    let rho = DensityMatrix::from_pure(&psi);

    let mut group = c.benchmark_group("semantics_engines");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("density (6 qubits)", |b| {
        b.iter(|| {
            let out = denot::denote(&program, &reg, &params, &rho);
            black_box(obs.expectation(&out))
        })
    });
    group.bench_function("pure-branching (6 qubits)", |b| {
        b.iter(|| black_box(denot::expectation_pure(&program, &reg, &params, &psi, &obs)))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
