//! Loss functions for training variational classifiers.
//!
//! The paper's case study (Section 8.1) uses the squared loss of Eq. 8.3 —
//! chosen there for direct comparison with PennyLane — and mentions the
//! average negative log-likelihood as the natural alternative; both are
//! provided.

/// A differentiable scalar loss on `(prediction, label)` pairs.
pub trait Loss {
    /// The loss value for one sample.
    fn loss(&self, prediction: f64, label: f64) -> f64;

    /// The derivative of the loss with respect to the prediction.
    fn grad(&self, prediction: f64, label: f64) -> f64;

    /// Total loss over a batch of `(prediction, label)` pairs.
    fn total<I>(&self, pairs: I) -> f64
    where
        I: IntoIterator<Item = (f64, f64)>,
        Self: Sized,
    {
        pairs.into_iter().map(|(p, l)| self.loss(p, l)).sum()
    }
}

impl Loss for Box<dyn Loss + '_> {
    fn loss(&self, prediction: f64, label: f64) -> f64 {
        (**self).loss(prediction, label)
    }

    fn grad(&self, prediction: f64, label: f64) -> f64 {
        (**self).grad(prediction, label)
    }
}

/// The squared loss `0.5·(l − f)²` of Eq. 8.3.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SquaredLoss;

impl Loss for SquaredLoss {
    fn loss(&self, prediction: f64, label: f64) -> f64 {
        0.5 * (prediction - label).powi(2)
    }

    fn grad(&self, prediction: f64, label: f64) -> f64 {
        prediction - label
    }
}

/// Negative log-likelihood for probabilistic binary predictions, clamped
/// away from 0/1 for numerical stability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NegLogLikelihood {
    /// Predictions are clamped to `[eps, 1-eps]`.
    pub eps: f64,
}

impl Default for NegLogLikelihood {
    fn default() -> Self {
        NegLogLikelihood { eps: 1e-9 }
    }
}

impl NegLogLikelihood {
    fn clamp(&self, p: f64) -> f64 {
        p.clamp(self.eps, 1.0 - self.eps)
    }
}

impl Loss for NegLogLikelihood {
    fn loss(&self, prediction: f64, label: f64) -> f64 {
        let p = self.clamp(prediction);
        -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
    }

    fn grad(&self, prediction: f64, label: f64) -> f64 {
        let p = self.clamp(prediction);
        -(label / p) + (1.0 - label) / (1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(loss: &impl Loss, p: f64, l: f64) -> f64 {
        let h = 1e-6;
        (loss.loss(p + h, l) - loss.loss(p - h, l)) / (2.0 * h)
    }

    #[test]
    fn squared_loss_values() {
        let sq = SquaredLoss;
        assert_eq!(sq.loss(1.0, 1.0), 0.0);
        assert_eq!(sq.loss(0.0, 1.0), 0.5);
        assert_eq!(sq.grad(0.25, 1.0), -0.75);
    }

    #[test]
    fn squared_loss_gradient_matches_numeric() {
        let sq = SquaredLoss;
        for (p, l) in [(0.2, 1.0), (0.9, 0.0), (0.5, 0.5)] {
            assert!((sq.grad(p, l) - numeric_grad(&sq, p, l)).abs() < 1e-6);
        }
    }

    #[test]
    fn nll_gradient_matches_numeric() {
        let nll = NegLogLikelihood::default();
        for (p, l) in [(0.2, 1.0), (0.9, 0.0), (0.5, 1.0)] {
            assert!(
                (nll.grad(p, l) - numeric_grad(&nll, p, l)).abs() < 1e-4,
                "p={p} l={l}"
            );
        }
    }

    #[test]
    fn nll_is_zero_at_perfect_confidence() {
        let nll = NegLogLikelihood::default();
        assert!(nll.loss(1.0, 1.0) < 1e-8);
        assert!(nll.loss(0.0, 0.0) < 1e-8);
        assert!(nll.loss(0.0, 1.0) > 10.0);
    }

    #[test]
    fn batch_total_sums() {
        let sq = SquaredLoss;
        let total = sq.total([(0.0, 1.0), (1.0, 1.0), (0.5, 0.0)]);
        assert!((total - (0.5 + 0.0 + 0.125)).abs() < 1e-12);
    }
}
