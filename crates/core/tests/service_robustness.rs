//! Robustness suite of the [`qdp_ad::GradientService`] and the bounded
//! [`qdp_ad::ProgramCache`] (PR 10).
//!
//! Three failure modes are driven deterministically and must each yield
//! **typed errors with no hangs and no effect on concurrent healthy
//! requests** (whose results stay bit-identical to solo engine calls,
//! under a forced 1-/2-/8-thread matrix):
//!
//! * **deadline expiry while queued** — the expired request alone returns
//!   [`QdpError::DeadlineExceeded`]; followers and the admitted-carryover
//!   gate are untouched;
//! * **overload shedding** — submits past the configured queue bound
//!   return [`QdpError::Overloaded`] without enqueueing; the survivors'
//!   bits are unaffected;
//! * **leader panic mid-sweep** — an injected
//!   [`qdp_sim::fault::FaultSite::Service`] panic is contained by the
//!   leader's `catch_unwind`: within the retry budget a follow-up leader
//!   re-serves the group bit-identically, past the budget every follower
//!   gets [`QdpError::ServicePanic`].
//!
//! The cache tests pin the residency bound (never exceeded under
//! pressure) and the warm-hit/recompile determinism contract: eviction
//! governs residency only, never the bits a skeleton computes.
//!
//! `set_max_threads` needs a quiesced process, so the thread-matrix tests
//! serialize on one mutex (the same idiom as `service_coalescing.rs`);
//! fault-injecting tests additionally serialize on the global injection
//! lock their `FaultGuard` holds.

use qdp_ad::{
    GradientEngine, GradientService, OverloadPolicy, ProgramCache, RequestOptions, ServiceConfig,
};
use qdp_lang::ast::Params;
use qdp_lang::{parse_program, Register};
use qdp_sim::fault::{fired_count, inject, FaultSite};
use qdp_sim::{BatchedStates, Observable, QdpError, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serializes the thread-override tests in this binary.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

const SRC: &str = "q1 *= RX(sa); q2 *= RY(sb); q1, q2 *= RZZ(sc)";

fn fixed_params() -> Params {
    Params::from_pairs([("sa", 0.3), ("sb", -0.7), ("sc", 1.9)])
}

/// A random normalised pure state on `n` qubits.
fn random_state(rng: &mut StdRng, n: usize) -> StateVector {
    let dim = 1usize << n;
    let mut amps: Vec<qdp_linalg::C64> = (0..dim)
        .map(|_| qdp_linalg::C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a *= qdp_linalg::C64::real(1.0 / norm);
    }
    StateVector::from_amplitudes(n, amps)
}

/// Solo expectation baselines for a set of inputs: the one-row batched
/// engine call each service result must match bit for bit.
fn solo_values(engine: &GradientEngine, params: &Params, obs: &Observable, inputs: &[StateVector]) -> Vec<f64> {
    inputs
        .iter()
        .map(|psi| engine.value_pure_batch(params, obs, &BatchedStates::gather(&[psi]))[0])
        .collect()
}

#[test]
fn deadline_expiry_under_load_leaves_healthy_followers_bitwise_solo() {
    let _guard = serialized();
    const N: usize = 5;
    let program = parse_program(SRC).unwrap();
    let params = fixed_params();
    let obs = Observable::pauli_z(2, 0);
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let inputs: Vec<StateVector> = (0..N).map(|_| random_state(&mut rng, 2)).collect();
    let doomed_input = random_state(&mut rng, 2);

    let solo_engine = GradientEngine::new(&program).unwrap();
    let solo = solo_values(&solo_engine, &params, &obs, &inputs);

    for &threads in &THREAD_COUNTS {
        qdp_par::set_max_threads(threads);
        // An admission threshold nothing reaches: only flush opens the gate,
        // so the doomed request deterministically expires while queued.
        let service = Arc::new(GradientService::with_admission(N + 2));
        let handle = service.register(&program).unwrap();

        let doomed = {
            let (service, handle) = (Arc::clone(&service), handle.clone());
            let (params, obs, psi) = (params.clone(), obs.clone(), doomed_input.clone());
            std::thread::spawn(move || {
                service.expectation_with(
                    &handle,
                    &params,
                    &obs,
                    &psi,
                    &RequestOptions::new().with_deadline(Duration::from_millis(40)),
                )
            })
        };
        let healthy: Vec<_> = (0..N)
            .map(|i| {
                let (service, handle) = (Arc::clone(&service), handle.clone());
                let (params, obs, psi) = (params.clone(), obs.clone(), inputs[i].clone());
                std::thread::spawn(move || {
                    service.expectation_with(&handle, &params, &obs, &psi, &RequestOptions::new())
                })
            })
            .collect();

        // The doomed request must expire on its own — exactly one typed
        // error, exactly one removal — while the healthy ones stay queued.
        let err = doomed.join().unwrap().unwrap_err();
        assert_eq!(err, QdpError::DeadlineExceeded { deadline_ms: 40 });
        assert_eq!(service.expired(&handle), 1, "threads={threads}");
        while service.pending_depth(&handle) < N {
            std::thread::sleep(Duration::from_millis(1));
        }

        // Release the followers: one flush, one shared sweep, solo bits.
        service.flush(&handle);
        let results: Vec<f64> = healthy
            .into_iter()
            .map(|w| w.join().unwrap().unwrap())
            .collect();
        qdp_par::set_max_threads(0);

        for (i, (got, want)) in results.iter().zip(&solo).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "threads={threads} client {i}: post-expiry {got} vs solo {want}"
            );
        }
        assert_eq!(service.sweeps(&handle), 1, "threads={threads}");
        assert_eq!(service.served(&handle), N, "threads={threads}");
    }
}

#[test]
fn overload_shedding_bounds_the_queue_and_survivors_keep_solo_bits() {
    let _guard = serialized();
    const TOTAL: usize = 12;
    const BOUND: usize = 4;
    let program = parse_program(SRC).unwrap();
    let params = fixed_params();
    let obs = Observable::pauli_z(2, 1);
    let mut rng = StdRng::seed_from_u64(0x0E4);
    let inputs: Vec<StateVector> = (0..TOTAL).map(|_| random_state(&mut rng, 2)).collect();

    let solo_engine = GradientEngine::new(&program).unwrap();
    let solo = solo_values(&solo_engine, &params, &obs, &inputs);

    for &threads in &THREAD_COUNTS {
        qdp_par::set_max_threads(threads);
        // Nothing serves until the flush, so the queue fills to its bound
        // and every later submit sheds — deterministically TOTAL − BOUND
        // rejections, whatever the arrival order.
        let service = Arc::new(GradientService::with_config(ServiceConfig {
            min_batch: TOTAL + 1,
            max_pending: Some(BOUND),
            overload: OverloadPolicy::RejectNewest,
        }));
        let handle = service.register(&program).unwrap();

        let workers: Vec<_> = (0..TOTAL)
            .map(|i| {
                let (service, handle) = (Arc::clone(&service), handle.clone());
                let (params, obs, psi) = (params.clone(), obs.clone(), inputs[i].clone());
                std::thread::spawn(move || {
                    service.expectation_with(&handle, &params, &obs, &psi, &RequestOptions::new())
                })
            })
            .collect();

        // Every submit resolves immediately into "queued" or "shed".
        while service.shed(&handle) + service.pending_depth(&handle) < TOTAL {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.shed(&handle), TOTAL - BOUND, "threads={threads}");
        assert_eq!(service.pending_depth(&handle), BOUND, "threads={threads}");

        service.flush(&handle);
        let results: Vec<Result<f64, QdpError>> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();
        qdp_par::set_max_threads(0);

        let mut served = 0;
        for (i, r) in results.iter().enumerate() {
            match r {
                Ok(v) => {
                    served += 1;
                    assert_eq!(
                        v.to_bits(),
                        solo[i].to_bits(),
                        "threads={threads} client {i}: sheltered result drifted"
                    );
                }
                Err(e) => assert_eq!(
                    *e,
                    QdpError::Overloaded { pending: BOUND, max_pending: BOUND },
                    "threads={threads} client {i}"
                ),
            }
        }
        assert_eq!(served, BOUND, "threads={threads}");
        assert_eq!(service.served(&handle), BOUND, "threads={threads}");
    }
}

#[test]
fn injected_leader_panic_is_reserved_by_a_follow_up_leader_bitwise() {
    let _guard = serialized();
    const N: usize = 4;
    let program = parse_program(SRC).unwrap();
    let params = fixed_params();
    let obs = Observable::pauli_z(2, 0);
    let mut rng = StdRng::seed_from_u64(0xFA17);
    let inputs: Vec<StateVector> = (0..N).map(|_| random_state(&mut rng, 2)).collect();

    let solo_engine = GradientEngine::new(&program).unwrap();
    let solo = solo_values(&solo_engine, &params, &obs, &inputs);

    for &threads in &THREAD_COUNTS {
        qdp_par::set_max_threads(threads);
        let service = Arc::new(GradientService::with_admission(N));
        let handle = service.register(&program).unwrap();

        // The first leader sweep panics; the default retry budget (1)
        // lets a follow-up leader re-serve the whole group.
        let fault = inject(FaultSite::Service { panics: 1 });
        let workers: Vec<_> = (0..N)
            .map(|i| {
                let (service, handle) = (Arc::clone(&service), handle.clone());
                let (params, obs, psi) = (params.clone(), obs.clone(), inputs[i].clone());
                std::thread::spawn(move || {
                    service.expectation_with(&handle, &params, &obs, &psi, &RequestOptions::new())
                })
            })
            .collect();
        let results: Vec<f64> = workers
            .into_iter()
            .map(|w| w.join().unwrap().unwrap())
            .collect();
        assert_eq!(fired_count(), 1, "threads={threads}: the fault must fire once");
        drop(fault);
        qdp_par::set_max_threads(0);

        for (i, (got, want)) in results.iter().zip(&solo).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "threads={threads} client {i}: re-served {got} vs solo {want}"
            );
        }
        assert_eq!(service.leader_failures(&handle), 1, "threads={threads}");
        assert_eq!(service.sweeps(&handle), 1, "threads={threads}");
        assert_eq!(service.served(&handle), N, "threads={threads}");
    }
}

#[test]
fn injected_leader_panics_past_the_retry_budget_fail_typed_without_hanging() {
    let _guard = serialized();
    const N: usize = 3;
    let program = parse_program(SRC).unwrap();
    let params = fixed_params();
    let obs = Observable::pauli_z(2, 1);
    let mut rng = StdRng::seed_from_u64(0xFA18);
    let inputs: Vec<StateVector> = (0..N).map(|_| random_state(&mut rng, 2)).collect();
    let healthy_input = random_state(&mut rng, 2);

    let solo_engine = GradientEngine::new(&program).unwrap();
    let healthy_solo =
        solo_values(&solo_engine, &params, &obs, std::slice::from_ref(&healthy_input))[0];

    for &threads in &THREAD_COUNTS {
        qdp_par::set_max_threads(threads);
        let service = Arc::new(GradientService::with_admission(N));
        let handle = service.register(&program).unwrap();

        // More panics armed than the budget (1 retry = 2 sweep attempts)
        // can absorb: every member must get the typed error, nobody hangs.
        let fault = inject(FaultSite::Service { panics: N + 2 });
        let workers: Vec<_> = (0..N)
            .map(|i| {
                let (service, handle) = (Arc::clone(&service), handle.clone());
                let (params, obs, psi) = (params.clone(), obs.clone(), inputs[i].clone());
                std::thread::spawn(move || {
                    service.expectation_with(&handle, &params, &obs, &psi, &RequestOptions::new())
                })
            })
            .collect();
        let results: Vec<Result<f64, QdpError>> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(
            fired_count(),
            2,
            "threads={threads}: one original sweep + one retry, then budget exhausted"
        );
        drop(fault);

        for (i, r) in results.iter().enumerate() {
            match r {
                Err(QdpError::ServicePanic { message }) => assert!(
                    message.contains("injected fault"),
                    "threads={threads} client {i}: {message}"
                ),
                other => panic!("threads={threads} client {i}: expected ServicePanic, got {other:?}"),
            }
        }
        assert_eq!(service.leader_failures(&handle), 2, "threads={threads}");
        assert_eq!(service.served(&handle), 0, "threads={threads}");

        // The tenant is not wedged: a fresh healthy request (released by
        // flush below the threshold) still carries solo bits.
        let worker = {
            let (service, handle) = (Arc::clone(&service), handle.clone());
            let (params, obs, psi) = (params.clone(), obs.clone(), healthy_input.clone());
            std::thread::spawn(move || {
                service.expectation_with(&handle, &params, &obs, &psi, &RequestOptions::new())
            })
        };
        while service.served(&handle) < 1 {
            service.flush(&handle);
            std::thread::sleep(Duration::from_millis(1));
        }
        let v = worker.join().unwrap().unwrap();
        qdp_par::set_max_threads(0);
        assert_eq!(
            v.to_bits(),
            healthy_solo.to_bits(),
            "threads={threads}: post-failure healthy request drifted"
        );
    }
}

#[test]
fn cache_eviction_under_pressure_keeps_every_computed_bit_identical() {
    let srcs = [
        "q1 *= RX(a); q1 *= H",
        "q1 *= RY(a); q1 *= RZ(b)",
        "q1 *= RZ(a)",
        "q1 *= RX(a); q1 *= RY(b); q1 *= H",
    ];
    let programs: Vec<(Vec<qdp_lang::ast::Stmt>, Register)> = srcs
        .iter()
        .map(|s| {
            let p = parse_program(s).unwrap();
            let reg = Register::from_program(&p);
            (vec![p], reg)
        })
        .collect();
    let params = Params::from_pairs([("a", 0.4), ("b", -1.1)]);
    let obs = Observable::pauli_z(1, 0);
    let psi = StateVector::zero_state(1);
    let batch = BatchedStates::gather(&[&psi]);

    // Unbounded baseline: each program's expectation bits, and the weight
    // of the largest skeleton (to size a capacity that forces eviction).
    let baseline_cache = ProgramCache::new();
    let mut baseline = Vec::new();
    for (p, reg) in &programs {
        let skel = baseline_cache.intern(p, reg);
        let values = skel.lowered().slot_values(&params);
        baseline.push(skel.lowered().expectation_batch(&values, &batch, &obs)[0]);
    }
    let total_weight = baseline_cache.counters().weight;

    // A capacity near half the total working set: interning all four
    // programs repeatedly must evict, yet the bound must hold at every
    // step and every result must carry the baseline bits.
    let cache = ProgramCache::with_capacity(total_weight / 2);
    for round in 0..3 {
        for (i, (p, reg)) in programs.iter().enumerate() {
            let skel = cache.intern(p, reg);
            let values = skel.lowered().slot_values(&params);
            let v = skel.lowered().expectation_batch(&values, &batch, &obs)[0];
            assert_eq!(
                v.to_bits(),
                baseline[i].to_bits(),
                "round {round} program {i}: eviction changed computed bits"
            );
            let c = cache.counters();
            assert!(
                c.weight <= total_weight / 2,
                "round {round} program {i}: resident weight {} over bound {}",
                c.weight,
                total_weight / 2
            );
        }
    }
    let c = cache.counters();
    assert!(c.evictions > 0, "pressure loop must actually evict: {c:?}");
    assert!(c.misses > programs.len(), "evicted programs must recompile: {c:?}");

    // Warm hits return the identical skeleton object.
    let first = cache.intern(&programs[0].0, &programs[0].1);
    let second = cache.intern(&programs[0].0, &programs[0].1);
    assert!(Arc::ptr_eq(&first, &second));
}

#[test]
fn stress_tight_deadlines_and_a_small_queue_never_hang_or_panic() {
    const WORKERS: usize = 8;
    const REQUESTS: usize = 12;
    let program = parse_program(SRC).unwrap();
    let obs = Observable::pauli_z(2, 0);
    let mut rng = StdRng::seed_from_u64(0x57E5);
    let inputs: Vec<StateVector> = (0..WORKERS).map(|_| random_state(&mut rng, 2)).collect();
    // Two compatibility classes, so head groups split under churn.
    let param_sets = [fixed_params(), Params::from_pairs([("sa", 1.2), ("sb", 0.4), ("sc", -0.9)])];

    let solo_engine = GradientEngine::new(&program).unwrap();
    let solo: Vec<f64> = (0..WORKERS)
        .map(|i| {
            solo_values(&solo_engine, &param_sets[i % 2], &obs, &[inputs[i].clone()])[0]
        })
        .collect();

    let service = Arc::new(GradientService::with_config(ServiceConfig {
        min_batch: 1,
        max_pending: Some(2),
        overload: OverloadPolicy::RejectNewest,
    }));
    let handle = service.register(&program).unwrap();

    let workers: Vec<_> = (0..WORKERS)
        .map(|i| {
            let (service, handle) = (Arc::clone(&service), handle.clone());
            let (params, obs, psi) = (param_sets[i % 2].clone(), obs.clone(), inputs[i].clone());
            let want = solo[i];
            std::thread::spawn(move || {
                let opts = RequestOptions::new().with_deadline(Duration::from_millis(5));
                let mut outcomes = (0usize, 0usize, 0usize); // ok, shed, expired
                for _ in 0..REQUESTS {
                    match service.expectation_with(&handle, &params, &obs, &psi, &opts) {
                        Ok(v) => {
                            outcomes.0 += 1;
                            assert_eq!(
                                v.to_bits(),
                                want.to_bits(),
                                "worker {i}: served result drifted from solo under stress"
                            );
                        }
                        Err(QdpError::Overloaded { .. }) => outcomes.1 += 1,
                        Err(QdpError::DeadlineExceeded { .. }) => outcomes.2 += 1,
                        Err(other) => panic!("unexpected error under stress: {other}"),
                    }
                }
                outcomes
            })
        })
        .collect();

    let mut ok = 0;
    let mut shed = 0;
    let mut expired = 0;
    for w in workers {
        let (o, s, e) = w.join().unwrap();
        ok += o;
        shed += s;
        expired += e;
    }
    assert_eq!(ok + shed + expired, WORKERS * REQUESTS, "every request must resolve");
    assert_eq!(service.served(&handle), ok);
    assert_eq!(service.shed(&handle), shed);
    assert_eq!(service.expired(&handle), expired);
    assert!(ok > 0, "a live service must serve something");

    // Served results carried solo bits: re-check one per worker directly.
    for i in 0..WORKERS {
        let v = service
            .expectation_with(
                &handle,
                &param_sets[i % 2],
                &obs,
                &inputs[i],
                &RequestOptions::new(),
            )
            .unwrap();
        assert_eq!(v.to_bits(), solo[i].to_bits(), "worker {i} input drifted");
    }
}
