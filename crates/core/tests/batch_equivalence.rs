//! Differential tests of the batched evaluation engine against the serial
//! per-sample path — the oracle every future backend inherits.
//!
//! Randomized circuits (up to 8 qubits, up to 24 parameters, with and
//! without measurement control flow) are evaluated on random input batches
//! of sizes 1, 2, 16, and 33 (the off-by-one-past-a-power-of-two size
//! exercises the batch's power-of-two block decomposition). For each
//! circuit the suite asserts:
//!
//! * batched forward values, per-parameter derivatives, full gradients,
//!   and the chain-ruled training loss/gradient all match the serial
//!   per-sample loop to `1e-12`, and
//! * the batched results are **bitwise** identical under forced 1-, 2-,
//!   and 8-thread `qdp_par` configurations.

use qdp_ad::{differentiate, GradientEngine};
use qdp_lang::ast::{Angle, Gate, Params, Stmt, Var};
use qdp_lang::Register;
use qdp_linalg::{C64, Pauli};
use qdp_sim::{BatchedStates, Observable, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Serializes **every** test in this binary: `set_max_threads` requires a
/// quiesced process (a concurrently running sibling test would hold
/// acquired worker tokens across the budget reset and re-inflate it on
/// release, silently undoing the forced configuration), so the
/// determinism test below must never overlap any other parallel work.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const TOL: f64 = 1e-12;
const BATCH_SIZES: [usize; 4] = [1, 2, 16, 33];

fn var(i: usize) -> Var {
    Var::new(format!("q{}", i + 1))
}

/// A random program over `n` qubits drawing parameterized rotations and
/// couplings from `params`; with `branching`, it also sprinkles in
/// measurement `case`s, `q := |0⟩` resets, and bounded `while` loops — the
/// constructs that force the batched executor off its fused straight-line
/// fast path.
fn random_program(
    rng: &mut StdRng,
    n: usize,
    params: &[String],
    len: usize,
    branching: bool,
) -> Stmt {
    let axes = [Pauli::X, Pauli::Y, Pauli::Z];
    let mut stmts: Vec<Stmt> = Vec::with_capacity(len);
    // Touch every qubit once so the register spans all n qubits.
    for q in 0..n {
        stmts.push(Stmt::unitary(Gate::H, [var(q)]));
    }
    for _ in 0..len {
        let param = params[rng.gen_range(0..params.len())].clone();
        let axis = axes[rng.gen_range(0..3usize)];
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..if branching { 10usize } else { 6usize }) {
            0..=2 => stmts.push(Stmt::rot(axis, param, var(q))),
            3 => {
                // Constant-offset angle: exercises parameterless slots.
                stmts.push(Stmt::unitary(
                    Gate::Rot {
                        axis,
                        angle: Angle {
                            param: Some(param),
                            offset: std::f64::consts::PI / 2.0,
                        },
                    },
                    [var(q)],
                ));
            }
            4 if n >= 2 => {
                let mut q2 = rng.gen_range(0..n);
                while q2 == q {
                    q2 = rng.gen_range(0..n);
                }
                stmts.push(Stmt::unitary(
                    Gate::Coupling {
                        axis,
                        angle: Angle::param(param),
                    },
                    [var(q), var(q2)],
                ));
            }
            5 => stmts.push(Stmt::unitary(Gate::H, [var(q)])),
            6 => stmts.push(Stmt::init(var(q))),
            7 | 8 => {
                let other = params[rng.gen_range(0..params.len())].clone();
                stmts.push(Stmt::Case {
                    qs: vec![var(q)],
                    arms: vec![
                        Stmt::rot(axis, param, var((q + 1) % n)),
                        Stmt::rot(axes[rng.gen_range(0..3usize)], other, var(q)),
                    ],
                });
            }
            _ => stmts.push(Stmt::while_bounded(
                var(q),
                2,
                Stmt::rot(axis, param, var(q)),
            )),
        }
    }
    Stmt::seq(stmts)
}

/// A random normalised pure state on `n` qubits.
fn random_state(rng: &mut StdRng, n: usize) -> StateVector {
    let dim = 1usize << n;
    let mut amps: Vec<C64> = (0..dim)
        .map(|_| C64::new(rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0))
        .collect();
    let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a = a.scale(1.0 / norm);
    }
    StateVector::from_amplitudes(n, amps)
}

fn random_valuation(rng: &mut StdRng, names: &[String]) -> Params {
    Params::from_pairs(
        names
            .iter()
            .map(|name| (name.clone(), rng.gen::<f64>() * std::f64::consts::TAU)),
    )
}

struct Case {
    engine: GradientEngine,
    register: Register,
    params: Params,
    obs: Observable,
}

/// The randomized circuit family under test: small/branching/wide-register
/// configurations, up to 8 qubits and 24 parameters.
fn cases() -> Vec<Case> {
    let configs: [(u64, usize, usize, usize, bool); 4] = [
        // (seed, qubits, params, ops, branching)
        (11, 2, 3, 10, false),
        (23, 4, 8, 16, true),
        (37, 5, 24, 26, false),
        (59, 8, 6, 12, true),
    ];
    configs
        .into_iter()
        .map(|(seed, n, n_params, len, branching)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let names: Vec<String> = (0..n_params).map(|i| format!("t{i}")).collect();
            let program = random_program(&mut rng, n, &names, len, branching);
            let register = Register::from_program(&program);
            let engine = GradientEngine::new(&program).expect("random programs differentiable");
            let params = random_valuation(&mut rng, &names);
            let obs = Observable::pauli_z(register.len(), rng.gen_range(0..register.len()));
            Case {
                engine,
                register,
                params,
                obs,
            }
        })
        .collect()
}

fn random_batch(rng: &mut StdRng, n: usize, rows: usize) -> Vec<StateVector> {
    (0..rows).map(|_| random_state(rng, n)).collect()
}

#[test]
fn batched_forward_values_match_serial_path() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xF0);
    for (ci, case) in cases().iter().enumerate() {
        for rows in BATCH_SIZES {
            let states = random_batch(&mut rng, case.register.len(), rows);
            let batch = BatchedStates::from_states(&states);
            let batched = case.engine.value_pure_batch(&case.params, &case.obs, &batch);
            assert_eq!(batched.len(), rows);
            for (r, psi) in states.iter().enumerate() {
                let serial = case.engine.value_pure(&case.params, &case.obs, psi);
                assert!(
                    (batched[r] - serial).abs() < TOL,
                    "case {ci} rows {rows} row {r}: batched {} vs serial {serial}",
                    batched[r]
                );
            }
        }
    }
}

#[test]
fn batched_derivatives_match_serial_path() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xD1);
    for (ci, case) in cases().iter().enumerate() {
        // One representative parameter per circuit keeps the run fast while
        // gradients (below) cover all of them.
        let param = case.engine.parameters().next().expect("has parameters");
        let diff = differentiate(case.engine.program(), param).unwrap();
        for rows in BATCH_SIZES {
            let states = random_batch(&mut rng, case.register.len(), rows);
            let batch = BatchedStates::from_states(&states);
            let batched = diff.derivative_pure_batch(&case.params, &case.obs, &batch);
            for (r, psi) in states.iter().enumerate() {
                let serial = diff.derivative_pure(&case.params, &case.obs, psi);
                assert!(
                    (batched[r] - serial).abs() < TOL,
                    "case {ci} ∂/∂{param} rows {rows} row {r}: batched {} vs serial {serial}",
                    batched[r]
                );
            }
        }
    }
}

#[test]
fn batched_gradients_match_serial_path_entrywise() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xA7);
    for (ci, case) in cases().iter().enumerate() {
        for rows in BATCH_SIZES {
            let states = random_batch(&mut rng, case.register.len(), rows);
            let batch = BatchedStates::from_states(&states);
            let batched = case
                .engine
                .gradient_pure_batch(&case.params, &case.obs, &batch);
            assert_eq!(batched.len(), rows);
            for (r, psi) in states.iter().enumerate() {
                let serial = case.engine.gradient_pure(&case.params, &case.obs, psi);
                assert_eq!(batched[r].len(), serial.len());
                for (name, s) in &serial {
                    let b = batched[r][name];
                    assert!(
                        (b - s).abs() < TOL,
                        "case {ci} rows {rows} row {r} ∂/∂{name}: batched {b} vs serial {s}"
                    );
                }
            }
        }
    }
}

/// The full training computation — squared loss chain-ruled through the
/// batch — against the per-sample loop `Trainer::loss_gradient` ran before
/// the batch engine existed.
#[test]
fn batched_loss_and_loss_gradient_match_serial_loop() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for (ci, case) in cases().iter().enumerate() {
        let rows = 16;
        let states = random_batch(&mut rng, case.register.len(), rows);
        let labels: Vec<f64> = (0..rows).map(|_| f64::from(rng.gen::<bool>())).collect();
        let batch = BatchedStates::from_states(&states);

        // Serial reference: per-sample forward + per-sample gradient.
        let mut serial_loss = 0.0;
        let mut serial_grads: BTreeMap<String, f64> = case
            .engine
            .parameters()
            .map(|name| (name.to_string(), 0.0))
            .collect();
        for (psi, label) in states.iter().zip(&labels) {
            let pred = case.engine.value_pure(&case.params, &case.obs, psi);
            serial_loss += (pred - label) * (pred - label);
            let outer = 2.0 * (pred - label);
            for (name, g) in case.engine.gradient_pure(&case.params, &case.obs, psi) {
                *serial_grads.get_mut(&name).unwrap() += outer * g;
            }
        }

        // Batched: one forward sweep + one gradient sweep.
        let preds = case.engine.value_pure_batch(&case.params, &case.obs, &batch);
        let batched_loss: f64 = preds
            .iter()
            .zip(&labels)
            .map(|(&p, &l)| (p - l) * (p - l))
            .sum();
        let grad_rows = case
            .engine
            .gradient_pure_batch(&case.params, &case.obs, &batch);
        let mut batched_grads: BTreeMap<String, f64> = serial_grads
            .keys()
            .map(|k| (k.clone(), 0.0))
            .collect();
        for (row, (&pred, &label)) in grad_rows.iter().zip(preds.iter().zip(&labels)) {
            let outer = 2.0 * (pred - label);
            for (name, g) in row {
                *batched_grads.get_mut(name).unwrap() += outer * g;
            }
        }

        assert!(
            (batched_loss - serial_loss).abs() < TOL,
            "case {ci} loss: batched {batched_loss} vs serial {serial_loss}"
        );
        for (name, s) in &serial_grads {
            let b = batched_grads[name];
            assert!(
                (b - s).abs() < TOL,
                "case {ci} dL/d{name}: batched {b} vs serial {s}"
            );
        }
    }
}

/// Batched evaluation must be **bitwise** reproducible under forced 1-, 2-,
/// and 8-thread `qdp_par` configurations — the deterministic-split
/// discipline of the kernels and the order-preserving reductions guarantee
/// it, and CI runs the whole suite under `QDP_PAR_THREADS=1` and `=8` to
/// keep it that way.
#[test]
fn batched_results_are_bitwise_deterministic_across_thread_counts() {
    let _guard = serialized();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for (ci, case) in cases().iter().enumerate() {
        for rows in BATCH_SIZES {
            let states = random_batch(&mut rng, case.register.len(), rows);
            let batch = BatchedStates::from_states(&states);
            type GradBits = Vec<Vec<(String, u64)>>;
            let mut runs: Vec<(Vec<u64>, GradBits)> = Vec::new();
            for threads in [1usize, 2, 8] {
                qdp_par::set_max_threads(threads);
                let values: Vec<u64> = case
                    .engine
                    .value_pure_batch(&case.params, &case.obs, &batch)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let grads: Vec<Vec<(String, u64)>> = case
                    .engine
                    .gradient_pure_batch(&case.params, &case.obs, &batch)
                    .iter()
                    .map(|row| row.iter().map(|(k, v)| (k.clone(), v.to_bits())).collect())
                    .collect();
                runs.push((values, grads));
            }
            qdp_par::set_max_threads(0); // restore auto-detection
            assert_eq!(runs[0], runs[1], "case {ci} rows {rows}: 1 vs 2 threads");
            assert_eq!(runs[1], runs[2], "case {ci} rows {rows}: 2 vs 8 threads");
        }
    }
}
