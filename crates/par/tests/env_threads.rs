//! The `QDP_PAR_THREADS` environment override.
//!
//! This lives in its own integration-test binary on purpose: the variable
//! is read exactly once, on the first `qdp_par` call of the process, so the
//! test must set it before anything else in the binary touches the crate.
//! (Unit tests inside `qdp-par` share a process and would race the
//! initialisation.)

#[test]
fn env_variable_fixes_detected_parallelism() {
    std::env::set_var("QDP_PAR_THREADS", "3");
    assert_eq!(qdp_par::max_threads(), 3);

    // A runtime override still wins...
    qdp_par::set_max_threads(5);
    assert_eq!(qdp_par::max_threads(), 5);

    // ...and clearing it falls back to the environment value, which was
    // latched at first use (later changes to the variable are ignored).
    std::env::set_var("QDP_PAR_THREADS", "7");
    qdp_par::set_max_threads(0);
    assert_eq!(qdp_par::max_threads(), 3);

    // Parallel work still completes and preserves order under the override.
    let items: Vec<usize> = (0..256).collect();
    let out = qdp_par::par_map(&items, |&x| x + 1);
    assert_eq!(out, (1..257).collect::<Vec<_>>());
}
