//! Static program metrics — the quantities the paper's tables report
//! (`#gates`, `#lines`, `#layers`, `#qb's`) plus standard circuit measures.

use crate::ast::Stmt;
use crate::pretty;
use std::collections::BTreeMap;

/// A bundle of static metrics for one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramMetrics {
    /// Unitary gate applications, with `while(T)` bodies counted `T` times
    /// (the paper's Table 3 convention).
    pub gates: usize,
    /// Non-empty pretty-printed source lines.
    pub lines: usize,
    /// Register width `|qVar(P)|`.
    pub qubits: usize,
    /// Number of AST statement nodes.
    pub statements: usize,
    /// Circuit depth: the longest chain of gates sharing a qubit along any
    /// execution path (measurements and initialisations count as one slot
    /// on their operands; `while` bodies count `T` times).
    pub depth: usize,
    /// Maximum measurement-control nesting (`case`/`while` inside arms).
    pub control_nesting: usize,
}

/// Computes all metrics for a program.
pub fn measure(stmt: &Stmt) -> ProgramMetrics {
    ProgramMetrics {
        gates: stmt.gate_count(),
        lines: pretty::line_count(stmt),
        qubits: stmt.qvar().len(),
        statements: statement_count(stmt),
        depth: depth_map(stmt).values().copied().max().unwrap_or(0),
        control_nesting: control_nesting(stmt),
    }
}

/// Number of AST statement nodes.
pub fn statement_count(stmt: &Stmt) -> usize {
    let mut count = 0;
    stmt.visit(&mut |_| count += 1);
    count
}

/// Maximum nesting depth of measurement-based control (`case` / `while`).
pub fn control_nesting(stmt: &Stmt) -> usize {
    match stmt {
        Stmt::Case { arms, .. } => {
            1 + arms.iter().map(control_nesting).max().unwrap_or(0)
        }
        Stmt::While { body, .. } => 1 + control_nesting(body),
        Stmt::Seq(a, b) | Stmt::Sum(a, b) => control_nesting(a).max(control_nesting(b)),
        _ => 0,
    }
}

/// Per-qubit slot counts after sequencing — the worst-case (over
/// measurement branches) number of operations each qubit participates in.
pub fn depth_map(stmt: &Stmt) -> BTreeMap<crate::ast::Var, usize> {
    let mut depths = BTreeMap::new();
    extend_depths(stmt, &mut depths);
    depths
}

fn extend_depths(stmt: &Stmt, depths: &mut BTreeMap<crate::ast::Var, usize>) {
    match stmt {
        Stmt::Abort { .. } | Stmt::Skip { .. } => {}
        Stmt::Init { q } => {
            *depths.entry(q.clone()).or_insert(0) += 1;
        }
        Stmt::Unitary { qs, .. } => {
            // A multi-qubit gate synchronises its operands at the slot after
            // the deepest of them.
            let slot = qs
                .iter()
                .map(|q| depths.get(q).copied().unwrap_or(0))
                .max()
                .unwrap_or(0)
                + 1;
            for q in qs {
                depths.insert(q.clone(), slot);
            }
        }
        Stmt::Seq(a, b) => {
            extend_depths(a, depths);
            extend_depths(b, depths);
        }
        Stmt::Case { qs, arms } => {
            // The measurement itself is one slot on the measured qubits.
            let slot = qs
                .iter()
                .map(|q| depths.get(q).copied().unwrap_or(0))
                .max()
                .unwrap_or(0)
                + 1;
            for q in qs {
                depths.insert(q.clone(), slot);
            }
            // Worst case over branches, per qubit.
            let mut merged = depths.clone();
            for arm in arms {
                let mut branch = depths.clone();
                extend_depths(arm, &mut branch);
                for (q, d) in branch {
                    let entry = merged.entry(q).or_insert(0);
                    *entry = (*entry).max(d);
                }
            }
            *depths = merged;
        }
        Stmt::While { bound, q, body } => {
            for _ in 0..*bound {
                let slot = depths.get(q).copied().unwrap_or(0) + 1;
                depths.insert(q.clone(), slot);
                extend_depths(body, depths);
            }
            // Final guard measurement of the exhausted loop.
            let slot = depths.get(q).copied().unwrap_or(0) + 1;
            depths.insert(q.clone(), slot);
        }
        Stmt::Sum(a, b) => {
            let mut left = depths.clone();
            extend_depths(a, &mut left);
            let mut right = depths.clone();
            extend_depths(b, &mut right);
            for (q, d) in right {
                let entry = left.entry(q).or_insert(0);
                *entry = (*entry).max(d);
            }
            *depths = left;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Var;
    use crate::parser::parse_program;

    #[test]
    fn straightline_depth_counts_per_qubit_chains() {
        let p = parse_program("q1 *= RX(a); q1 *= RY(a); q2 *= RZ(a)").unwrap();
        let m = measure(&p);
        assert_eq!(m.gates, 3);
        assert_eq!(m.depth, 2, "q1 has two gates in a row");
        assert_eq!(m.qubits, 2);
        assert_eq!(m.control_nesting, 0);
    }

    #[test]
    fn two_qubit_gates_synchronise_operands() {
        let p = parse_program("q1 *= RX(a); q1, q2 *= RXX(a); q2 *= RZ(a)").unwrap();
        let depths = depth_map(&p);
        assert_eq!(depths[&Var::new("q1")], 2);
        assert_eq!(depths[&Var::new("q2")], 3);
    }

    #[test]
    fn case_takes_worst_branch() {
        let p = parse_program(
            "case M[q1] = 0 -> skip[q2], 1 -> q2 *= RX(a); q2 *= RY(a) end",
        )
        .unwrap();
        let m = measure(&p);
        assert_eq!(m.depth, 2, "deepest branch on q2");
        assert_eq!(m.control_nesting, 1);
    }

    #[test]
    fn while_multiplies_body_depth() {
        let p = parse_program("while[3] M[q1] = 1 do q2 *= RX(a) done").unwrap();
        let depths = depth_map(&p);
        assert_eq!(depths[&Var::new("q2")], 3);
        assert_eq!(depths[&Var::new("q1")], 4, "3 guard reads + final read");
    }

    #[test]
    fn nesting_counts_all_control_layers() {
        let p = parse_program(
            "case M[q1] = 0 -> while[2] M[q2] = 1 do skip[q1] done, 1 -> skip[q1] end",
        )
        .unwrap();
        assert_eq!(control_nesting(&p), 2);
    }

    #[test]
    fn statement_count_includes_every_node() {
        let p = parse_program("q1 *= RX(a); q1 *= RY(a)").unwrap();
        // Seq + two unitaries.
        assert_eq!(statement_count(&p), 3);
    }
}
