//! The interned-program cache — lowering as a memoized query.
//!
//! Every gradient entry point used to re-lower its compiled multiset from
//! the AST behind its own `OnceLock`: `Differentiated`, `GradientEngine`'s
//! forward program, and `PreparedDerivativeEstimator` each paid the full
//! parse-tree walk, register resolution, loop unrolling, and constant
//! matrix construction for programs the process had already compiled.
//! [`ProgramCache`] deletes that duplication: interning a compiled multiset
//! returns an [`Arc<CompiledSkeleton>`] that is built **exactly once per
//! unique program per process** and shared by every caller thereafter.
//!
//! # Cache key contract
//!
//! The key is [`qdp_lang::multiset_fingerprint`] — a structural hash of the
//! ordered program list **and** the register it lowers against (variable
//! names, order, width; an ancilla-extended register keys differently from
//! its base). The hash only routes the lookup: every entry stores the full
//! compiled multiset and register, and lookup verifies deep structural
//! equality before sharing, so a 64-bit collision costs a bucket scan but
//! can never alias two different programs onto one skeleton.
//!
//! # Concurrency
//!
//! The bucket map is held behind a `Mutex` only long enough to find or
//! insert an entry; lowering itself runs inside the entry's own
//! `OnceLock::get_or_init`, so concurrent first-touch of one program lowers
//! once (every other thread blocks on that entry alone, not on the cache),
//! and first-touch of *different* programs never serializes against each
//! other's compilation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use qdp_lang::{multiset_fingerprint, Register, Stmt};
use qdp_sim::TrajProgram;

use crate::lowered::{LoweredSet, TrajSkeleton};

/// Everything parameter-independent about one compiled multiset, built once
/// at intern time: the lowered op lists (constant matrices hoisted) and one
/// patchable trajectory skeleton per program.
#[derive(Debug)]
pub struct CompiledSkeleton {
    lowered: LoweredSet,
    trajectories: Vec<TrajSkeleton>,
}

impl CompiledSkeleton {
    fn build(compiled: &[Stmt], reg: &Register) -> Self {
        let lowered = LoweredSet::lower(compiled, reg);
        let trajectories = lowered
            .programs()
            .iter()
            .map(crate::lowered::LoweredProgram::to_skeleton)
            .collect();
        CompiledSkeleton {
            lowered,
            trajectories,
        }
    }

    /// The shared lowered multiset.
    pub fn lowered(&self) -> &LoweredSet {
        &self.lowered
    }

    /// One patchable trajectory skeleton per lowered program, in multiset
    /// order.
    pub fn trajectories(&self) -> &[TrajSkeleton] {
        &self.trajectories
    }

    /// Substitutes a valuation into program `i`'s skeleton — bit-identical
    /// to `lowered().programs()[i].resolve(values).to_trajectory()` with
    /// only the parameterized matrices rebuilt.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range or `values` is shorter than the slot
    /// table.
    pub fn trajectory_at(&self, i: usize, values: &[f64]) -> TrajProgram {
        self.trajectories[i].at(values)
    }
}

/// Per-entry bookkeeping: the verified identity plus the lazily-built
/// skeleton and its usage counters.
#[derive(Debug)]
struct Entry {
    compiled: Vec<Stmt>,
    register: Register,
    cell: OnceLock<Arc<CompiledSkeleton>>,
    lowers: AtomicUsize,
    hits: AtomicUsize,
}

/// Usage counters of one interned program (see
/// [`ProgramCache::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// How many times the entry's skeleton was compiled — at most 1.
    pub lowers: usize,
    /// How many interns were served from the already-built skeleton.
    pub hits: usize,
}

/// A memoization table from structural program fingerprints to shared
/// compiled skeletons. One global instance ([`ProgramCache::global`])
/// backs every gradient entry point; fresh instances exist for tests that
/// need isolated first-touch behaviour.
#[derive(Debug, Default)]
pub struct ProgramCache {
    buckets: Mutex<HashMap<u64, Vec<Arc<Entry>>>>,
}

/// Poison-tolerant lock: entry insertion can't corrupt the map (pushes of
/// `Arc`s), so a panicked holder leaves a usable structure behind.
fn lock(m: &Mutex<HashMap<u64, Vec<Arc<Entry>>>>) -> MutexGuard<'_, HashMap<u64, Vec<Arc<Entry>>>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// The process-wide cache every gradient entry point interns through.
    pub fn global() -> &'static ProgramCache {
        static GLOBAL: OnceLock<ProgramCache> = OnceLock::new();
        GLOBAL.get_or_init(ProgramCache::new)
    }

    /// Interns a compiled multiset over a register: returns the shared
    /// skeleton, compiling it only on the process-wide first touch of this
    /// exact (multiset, register) pair.
    ///
    /// # Panics
    ///
    /// Panics when lowering does (additive programs, variables outside the
    /// register).
    pub fn intern(&self, compiled: &[Stmt], reg: &Register) -> Arc<CompiledSkeleton> {
        self.intern_keyed(multiset_fingerprint(compiled, reg), compiled, reg)
    }

    /// The intern body, with the key supplied by the caller — split out so
    /// collision behaviour is testable (two different programs forced onto
    /// one key must still get distinct skeletons).
    fn intern_keyed(&self, key: u64, compiled: &[Stmt], reg: &Register) -> Arc<CompiledSkeleton> {
        let entry = {
            let mut map = lock(&self.buckets);
            let bucket = map.entry(key).or_default();
            match bucket
                .iter()
                .find(|e| e.register == *reg && e.compiled == compiled)
            {
                Some(e) => Arc::clone(e),
                None => {
                    let e = Arc::new(Entry {
                        compiled: compiled.to_vec(),
                        register: reg.clone(),
                        cell: OnceLock::new(),
                        lowers: AtomicUsize::new(0),
                        hits: AtomicUsize::new(0),
                    });
                    bucket.push(Arc::clone(&e));
                    e
                }
            }
        };
        // Lowering runs outside the map lock; losers of a first-touch race
        // block on this entry's cell only.
        let mut fresh = false;
        let skeleton = entry
            .cell
            .get_or_init(|| {
                fresh = true;
                entry.lowers.fetch_add(1, Ordering::Relaxed);
                Arc::new(CompiledSkeleton::build(&entry.compiled, &entry.register))
            })
            .clone();
        if !fresh {
            entry.hits.fetch_add(1, Ordering::Relaxed);
        }
        skeleton
    }

    /// The usage counters of one interned program, or `None` when the pair
    /// was never interned.
    pub fn stats(&self, compiled: &[Stmt], reg: &Register) -> Option<CacheStats> {
        let map = lock(&self.buckets);
        let bucket = map.get(&multiset_fingerprint(compiled, reg))?;
        let entry = bucket
            .iter()
            .find(|e| e.register == *reg && e.compiled == compiled)?;
        Some(CacheStats {
            lowers: entry.lowers.load(Ordering::Relaxed),
            hits: entry.hits.load(Ordering::Relaxed),
        })
    }

    /// How many distinct programs the cache holds.
    pub fn unique_programs(&self) -> usize {
        lock(&self.buckets).values().map(Vec::len).sum()
    }

    /// Total compilations across all entries — equals
    /// [`unique_programs`](Self::unique_programs) once every entry's first
    /// touch has completed.
    pub fn total_lowers(&self) -> usize {
        lock(&self.buckets)
            .values()
            .flatten()
            .map(|e| e.lowers.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::parse_program;

    fn program(src: &str) -> (Vec<Stmt>, Register) {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        (vec![p], reg)
    }

    #[test]
    fn intern_compiles_once_and_shares_the_skeleton() {
        let cache = ProgramCache::new();
        let (p, reg) = program("q1 *= RX(a); q1 *= H");
        let first = cache.intern(&p, &reg);
        let second = cache.intern(&p, &reg);
        assert!(Arc::ptr_eq(&first, &second), "interns must share one skeleton");
        assert_eq!(
            cache.stats(&p, &reg),
            Some(CacheStats { lowers: 1, hits: 1 })
        );
    }

    #[test]
    fn forced_key_collision_does_not_alias() {
        // Drive two structurally different programs through one bucket: the
        // deep-equality check must keep their skeletons distinct.
        let cache = ProgramCache::new();
        let (p1, reg1) = program("q1 *= RX(a)");
        let (p2, reg2) = program("q1 *= RY(b); q1 *= H");
        let s1 = cache.intern_keyed(42, &p1, &reg1);
        let s2 = cache.intern_keyed(42, &p2, &reg2);
        assert!(!Arc::ptr_eq(&s1, &s2), "collision must not alias skeletons");
        assert_eq!(s1.lowered().param_names(), ["a"]);
        assert_eq!(s2.lowered().param_names(), ["b"]);
        assert_eq!(cache.unique_programs(), 2);
        assert_eq!(cache.total_lowers(), 2);
        // Re-interning under the collided key still finds the right entry.
        assert!(Arc::ptr_eq(&s1, &cache.intern_keyed(42, &p1, &reg1)));
    }

    #[test]
    fn register_variants_get_distinct_entries() {
        use qdp_lang::Var;
        let cache = ProgramCache::new();
        let p = vec![parse_program("q1 *= RX(a)").unwrap()];
        let base = Register::from_vars([Var::new("q1")]);
        let wide = Register::from_vars([Var::new("q1"), Var::new("q2")]);
        let ext = base.with_ancilla_front(Var::new("A"));
        let s_base = cache.intern(&p, &base);
        let s_wide = cache.intern(&p, &wide);
        let s_ext = cache.intern(&p, &ext);
        assert!(!Arc::ptr_eq(&s_base, &s_wide));
        assert!(!Arc::ptr_eq(&s_base, &s_ext));
        assert_eq!(cache.unique_programs(), 3);
    }
}
