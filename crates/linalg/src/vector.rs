//! Dense complex vectors.

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex column vector.
///
/// Used for pure quantum states (in `qdp-sim`) and as the result of
/// matrix-vector products.
///
/// # Examples
///
/// ```
/// use qdp_linalg::{C64, CVector};
///
/// let plus = CVector::from_reals(&[1.0, 1.0]).normalized();
/// assert!((plus.norm() - 1.0).abs() < 1e-15);
/// assert!((plus.inner(&plus).re - 1.0).abs() < 1e-15);
/// ```
#[derive(Clone, PartialEq)]
pub struct CVector {
    data: Vec<C64>,
}

impl CVector {
    /// Creates a vector from complex entries.
    pub fn new(data: Vec<C64>) -> Self {
        CVector { data }
    }

    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        CVector {
            data: vec![C64::ZERO; n],
        }
    }

    /// Creates the computational-basis vector `|k⟩` of dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    pub fn basis(n: usize, k: usize) -> Self {
        assert!(k < n, "basis index {k} out of range for dimension {n}");
        let mut v = CVector::zeros(n);
        v.data[k] = C64::ONE;
        v
    }

    /// Creates a vector from real entries.
    pub fn from_reals(entries: &[f64]) -> Self {
        CVector {
            data: entries.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    /// Vector length (dimension).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has dimension zero.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying entries.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutably borrows the underlying entries.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the vector and returns its entries.
    pub fn into_inner(self) -> Vec<C64> {
        self.data
    }

    /// Hermitian inner product `⟨self|other⟩` (conjugate-linear in `self`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn inner(&self, other: &CVector) -> C64 {
        assert_eq!(self.len(), other.len(), "inner product dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(C64::ZERO, |acc, (a, b)| acc.mul_add(a.conj(), *b))
    }

    /// Euclidean norm `‖v‖`.
    pub fn norm(&self) -> f64 {
        self.data
            .iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Returns the vector scaled to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (numerically) zero.
    pub fn normalized(&self) -> CVector {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self.scale(C64::real(1.0 / n))
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: C64) -> CVector {
        CVector {
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CVector) -> CVector {
        let mut data = Vec::with_capacity(self.len() * other.len());
        for &a in &self.data {
            for &b in &other.data {
                data.push(a * b);
            }
        }
        CVector { data }
    }

    /// Approximate equality within absolute tolerance `tol` entry-wise.
    pub fn approx_eq(&self, other: &CVector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Iterates over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, C64> {
        self.data.iter()
    }
}

impl fmt::Debug for CVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CVector[")?;
        for (i, z) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for CVector {
    type Output = C64;
    fn index(&self, i: usize) -> &C64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVector {
    fn index_mut(&mut self, i: usize) -> &mut C64 {
        &mut self.data[i]
    }
}

impl Add for &CVector {
    type Output = CVector;
    fn add(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "vector addition dimension mismatch");
        CVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CVector {
    type Output = CVector;
    fn sub(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction dimension mismatch");
        CVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CVector {
    type Output = CVector;
    fn neg(self) -> CVector {
        self.scale(-C64::ONE)
    }
}

impl Mul<C64> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: C64) -> CVector {
        self.scale(rhs)
    }
}

impl FromIterator<C64> for CVector {
    fn from_iter<I: IntoIterator<Item = C64>>(iter: I) -> Self {
        CVector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a CVector {
    type Item = &'a C64;
    type IntoIter = std::slice::Iter<'a, C64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_vectors_are_orthonormal() {
        for i in 0..4 {
            for j in 0..4 {
                let e_i = CVector::basis(4, i);
                let e_j = CVector::basis(4, j);
                let expected = if i == j { C64::ONE } else { C64::ZERO };
                assert_eq!(e_i.inner(&e_j), expected);
            }
        }
    }

    #[test]
    fn inner_product_is_conjugate_linear_in_first_arg() {
        let v = CVector::new(vec![C64::I, C64::ONE]);
        let w = CVector::new(vec![C64::ONE, C64::I]);
        // ⟨iv|w⟩ = -i⟨v|w⟩
        let lhs = v.scale(C64::I).inner(&w);
        let rhs = -C64::I * v.inner(&w);
        assert!(lhs.approx_eq(rhs, 1e-15));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let v = CVector::from_reals(&[1.0, 2.0]);
        let w = CVector::from_reals(&[3.0, 4.0]);
        let k = v.kron(&w);
        assert_eq!(k.len(), 4);
        assert_eq!(k[0], C64::real(3.0));
        assert_eq!(k[1], C64::real(4.0));
        assert_eq!(k[2], C64::real(6.0));
        assert_eq!(k[3], C64::real(8.0));
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = CVector::new(vec![C64::new(3.0, 0.0), C64::new(0.0, 4.0)]);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "cannot normalize")]
    fn normalizing_zero_panics() {
        CVector::zeros(3).normalized();
    }

    #[test]
    fn vector_arithmetic() {
        let v = CVector::from_reals(&[1.0, 2.0]);
        let w = CVector::from_reals(&[0.5, -1.0]);
        assert_eq!((&v + &w)[1], C64::real(1.0));
        assert_eq!((&v - &w)[0], C64::real(0.5));
        assert_eq!((-&v)[0], C64::real(-1.0));
        assert_eq!((&v * C64::I)[0], C64::I);
    }
}
