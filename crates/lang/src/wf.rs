//! Well-formedness checking for programs.
//!
//! The syntax of Section 3.1 carries side conditions that the AST cannot
//! express: registers are *sets* of distinct variables, `case` statements
//! provide one arm per measurement outcome, and `while` bounds are positive.
//! [`check`] validates them all; the semantics modules assume (and
//! `debug_assert`) well-formed input.

use crate::ast::{Stmt, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A well-formedness violation.
#[derive(Clone, Debug, PartialEq)]
pub enum WfError {
    /// The same variable appears twice in one operand list.
    DuplicateVariable {
        /// The repeated variable.
        var: Var,
        /// Rendering of the offending statement.
        context: String,
    },
    /// A gate was applied to the wrong number of qubits.
    ArityMismatch {
        /// Gate mnemonic.
        gate: String,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        found: usize,
    },
    /// A `case` has the wrong number of arms for its measured register.
    ArmCountMismatch {
        /// Number of measured qubits.
        qubits: usize,
        /// Expected `2^qubits` arms.
        expected: usize,
        /// Actual arm count.
        found: usize,
    },
    /// A `while` has bound zero.
    ZeroBound,
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfError::DuplicateVariable { var, context } => {
                write!(f, "variable '{var}' repeated in {context}")
            }
            WfError::ArityMismatch {
                gate,
                expected,
                found,
            } => write!(f, "gate {gate} takes {expected} qubit(s), got {found}"),
            WfError::ArmCountMismatch {
                qubits,
                expected,
                found,
            } => write!(
                f,
                "case over {qubits} qubit(s) needs {expected} arms, found {found}"
            ),
            WfError::ZeroBound => write!(f, "while bound must be at least 1"),
        }
    }
}

impl std::error::Error for WfError {}

/// Checks all well-formedness conditions on a (normal or additive) program.
///
/// # Errors
///
/// Returns the first violation found in a pre-order walk.
///
/// # Examples
///
/// ```
/// use qdp_lang::{parse_program, wf};
///
/// let p = parse_program("q1 *= RX(t); q1 *= RY(t)")?;
/// wf::check(&p)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check(stmt: &Stmt) -> Result<(), WfError> {
    match stmt {
        Stmt::Abort { qs } | Stmt::Skip { qs } => check_distinct(qs, stmt),
        Stmt::Init { .. } => Ok(()),
        Stmt::Unitary { gate, qs } => {
            check_distinct(qs, stmt)?;
            if gate.arity() != qs.len() {
                return Err(WfError::ArityMismatch {
                    gate: gate.mnemonic(),
                    expected: gate.arity(),
                    found: qs.len(),
                });
            }
            Ok(())
        }
        Stmt::Seq(a, b) | Stmt::Sum(a, b) => {
            check(a)?;
            check(b)
        }
        Stmt::Case { qs, arms } => {
            check_distinct(qs, stmt)?;
            let expected = 1usize << qs.len();
            if arms.len() != expected {
                return Err(WfError::ArmCountMismatch {
                    qubits: qs.len(),
                    expected,
                    found: arms.len(),
                });
            }
            for arm in arms {
                check(arm)?;
            }
            Ok(())
        }
        Stmt::While { bound, body, .. } => {
            if *bound == 0 {
                return Err(WfError::ZeroBound);
            }
            check(body)
        }
    }
}

fn check_distinct(qs: &[Var], stmt: &Stmt) -> Result<(), WfError> {
    let mut seen = BTreeSet::new();
    for q in qs {
        if !seen.insert(q) {
            return Err(WfError::DuplicateVariable {
                var: q.clone(),
                context: format!("{stmt:?}").chars().take(60).collect(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Gate;
    use qdp_linalg::Pauli;

    #[test]
    fn accepts_well_formed_programs() {
        let p = Stmt::seq([
            Stmt::init("q1"),
            Stmt::rot(Pauli::X, "t", "q1"),
            Stmt::coupling(Pauli::Z, "t", "q1", "q2"),
            Stmt::case_qubit("q1", Stmt::skip([Var::new("q2")]), Stmt::abort([Var::new("q2")])),
            Stmt::while_bounded("q2", 2, Stmt::rot(Pauli::Y, "s", "q1")),
        ]);
        assert!(check(&p).is_ok());
    }

    #[test]
    fn rejects_duplicate_operands() {
        let p = Stmt::Unitary {
            gate: Gate::Cnot,
            qs: vec![Var::new("q1"), Var::new("q1")],
        };
        assert!(matches!(check(&p), Err(WfError::DuplicateVariable { .. })));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let p = Stmt::Unitary {
            gate: Gate::H,
            qs: vec![Var::new("q1"), Var::new("q2")],
        };
        assert!(matches!(check(&p), Err(WfError::ArityMismatch { .. })));
    }

    #[test]
    fn rejects_bad_arm_count() {
        let p = Stmt::Case {
            qs: vec![Var::new("q1")],
            arms: vec![Stmt::skip([Var::new("q1")])],
        };
        assert!(matches!(check(&p), Err(WfError::ArmCountMismatch { .. })));
    }

    #[test]
    fn rejects_zero_bound() {
        let p = Stmt::While {
            q: Var::new("q1"),
            bound: 0,
            body: Box::new(Stmt::skip([Var::new("q1")])),
        };
        assert_eq!(check(&p), Err(WfError::ZeroBound));
    }

    #[test]
    fn checks_recursively_inside_sums() {
        let bad = Stmt::Unitary {
            gate: Gate::H,
            qs: vec![],
        };
        let p = Stmt::Sum(
            Box::new(Stmt::skip([Var::new("q1")])),
            Box::new(bad),
        );
        assert!(check(&p).is_err());
    }
}
