//! Deterministic fault injection for the fault-tolerance test suites.
//!
//! This module is **test instrumentation**: it lets a test poison
//! amplitudes at the Nth batched kernel call or panic a specific worker
//! tile, so the recovery machinery (panic isolation, health policies,
//! bounded retries) can be driven deterministically. It ships in the
//! library (integration tests link the crate as a dependency, where
//! `cfg(test)` is off), but when no fault is armed the only cost on a hot
//! path is one relaxed atomic load.
//!
//! Arming returns a [`FaultGuard`] that holds a global lock for its whole
//! lifetime, so tests that inject faults serialize against each other
//! automatically; dropping the guard disarms the plan.
//!
//! **Determinism.** Tile indices are stable under any thread count (they
//! are positions in the fan-out's input slice), so [`FaultSite::Tile`]
//! plans are deterministic everywhere. Kernel-call counting is a global
//! sequence number; it is deterministic only for workloads whose kernel
//! calls are serially ordered (single-tile batches, or
//! `QDP_PAR_THREADS=1`) — the fault suites use exactly those shapes for
//! [`FaultSite::Kernel`] plans.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// How a poisoned row's amplitudes are corrupted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Overwrite the row's first amplitude with NaN.
    Nan,
    /// Overwrite the row's first amplitude with +∞.
    Inf,
    /// Multiply every amplitude of the row by the factor (norm drift).
    Scale(f64),
}

/// Where a fault fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSite {
    /// Poison row `row` after the `call`-th `BatchedStates::apply_gate`
    /// (0-based, counted from arming). Fires once.
    Kernel {
        /// Which kernel call (0-based since arming) to poison.
        call: usize,
        /// Which row of the batch the call ran on to poison.
        row: usize,
        /// The corruption to apply.
        kind: FaultKind,
    },
    /// Panic at the `index`-th tile checkpoint of a parallel fan-out, the
    /// first `panics` times that tile runs (so bounded retries can be
    /// proven to heal — or to exhaust).
    Tile {
        /// Tile index in the fan-out's input slice.
        index: usize,
        /// How many times the tile panics before succeeding.
        panics: usize,
    },
    /// Panic at the service-leader checkpoint — the start of a coalesced
    /// sweep in `qdp_ad::GradientService` — the first `panics` times a
    /// leader reaches it. Drives the leader-failure containment suite:
    /// `panics = 1` proves a follow-up leader re-serves the group,
    /// `panics > retry budget` proves followers get typed errors instead
    /// of hanging.
    Service {
        /// How many successive leader sweeps panic before one succeeds.
        panics: usize,
    },
}

struct Plan {
    site: FaultSite,
    /// Kernel calls observed since arming.
    kernel_calls: usize,
    /// How many times the fault has fired.
    fired: usize,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Plan>> = Mutex::new(None);
/// Serializes tests that inject faults (held by [`FaultGuard`]).
static INJECTION_LOCK: Mutex<()> = Mutex::new(());

fn plan() -> MutexGuard<'static, Option<Plan>> {
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Keeps an injected fault armed; disarms on drop. Holding the guard also
/// holds the global injection lock, so concurrently running tests cannot
/// observe each other's faults.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *plan() = None;
    }
}

/// Arms a fault plan. The returned guard must be kept alive for the
/// duration of the faulty run and dropped to disarm.
pub fn inject(site: FaultSite) -> FaultGuard {
    let lock = INJECTION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    *plan() = Some(Plan { site, kernel_calls: 0, fired: 0 });
    ARMED.store(true, Ordering::Release);
    FaultGuard { _lock: lock }
}

/// How many times the armed fault has fired (0 when disarmed). Lets tests
/// assert that a fault actually triggered and how often retries re-hit it.
pub fn fired_count() -> usize {
    plan().as_ref().map_or(0, |p| p.fired)
}

/// Hook called by `BatchedStates::apply_gate` after each kernel
/// invocation. `re`/`im` are the full `rows × 2ⁿ` split amplitude planes.
#[inline]
pub(crate) fn kernel_checkpoint(n_qubits: usize, rows: usize, re: &mut [f64], im: &mut [f64]) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let mut guard = plan();
    let Some(p) = guard.as_mut() else { return };
    let FaultSite::Kernel { call, row, kind } = p.site else { return };
    let seen = p.kernel_calls;
    p.kernel_calls += 1;
    if seen != call || p.fired > 0 || row >= rows {
        return;
    }
    p.fired += 1;
    let dim = 1usize << n_qubits;
    let row_re = &mut re[row * dim..(row + 1) * dim];
    let row_im = &mut im[row * dim..(row + 1) * dim];
    match kind {
        FaultKind::Nan => {
            row_re[0] = f64::NAN;
            row_im[0] = 0.0;
        }
        FaultKind::Inf => {
            row_re[0] = f64::INFINITY;
            row_im[0] = 0.0;
        }
        FaultKind::Scale(factor) => {
            // Matches `C64 * f64` componentwise, so the drift is the exact
            // scaling the AoS hook produced.
            for (ar, ai) in row_re.iter_mut().zip(row_im.iter_mut()) {
                *ar *= factor;
                *ai *= factor;
            }
        }
    }
}

/// Hook called at the top of each parallel tile closure with the tile's
/// deterministic index. Panics when an armed [`FaultSite::Tile`] plan
/// targets this tile and still has panics to spend.
#[inline]
pub(crate) fn tile_checkpoint(tile: usize) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let should_panic = {
        let mut guard = plan();
        match guard.as_mut() {
            Some(p) => {
                let FaultSite::Tile { index, panics } = p.site else { return };
                if index == tile && p.fired < panics {
                    p.fired += 1;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    };
    if should_panic {
        panic!("injected fault: tile {tile} panicked");
    }
}

/// Hook called by `qdp_ad::GradientService` at the start of each coalesced
/// leader sweep. Public (unlike the in-crate kernel/tile hooks) because the
/// service lives in a downstream crate. Panics while an armed
/// [`FaultSite::Service`] plan still has panics to spend.
#[inline]
pub fn service_checkpoint() {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let should_panic = {
        let mut guard = plan();
        match guard.as_mut() {
            Some(p) => {
                let FaultSite::Service { panics } = p.site else { return };
                if p.fired < panics {
                    p.fired += 1;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    };
    if should_panic {
        panic!("injected fault: leader sweep panicked");
    }
}
